package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcbnet/internal/matrix"
)

// checkColoring verifies a proper edge coloring.
func checkColoring(t *testing.T, edges []Edge, colors []int, numColors, nU, nV int) {
	t.Helper()
	seenU := map[[2]int]bool{}
	seenV := map[[2]int]bool{}
	for i, e := range edges {
		c := colors[i]
		if c < 0 || c >= numColors {
			t.Fatalf("edge %d color %d out of range [0,%d)", i, c, numColors)
		}
		if seenU[[2]int{e.U, c}] {
			t.Fatalf("color %d repeated at left vertex %d", c, e.U)
		}
		if seenV[[2]int{e.V, c}] {
			t.Fatalf("color %d repeated at right vertex %d", c, e.V)
		}
		seenU[[2]int{e.U, c}] = true
		seenV[[2]int{e.V, c}] = true
	}
}

func maxDegree(edges []Edge, nU, nV int) int {
	du := make([]int, nU)
	dv := make([]int, nV)
	d := 0
	for _, e := range edges {
		du[e.U]++
		dv[e.V]++
		if du[e.U] > d {
			d = du[e.U]
		}
		if dv[e.V] > d {
			d = dv[e.V]
		}
	}
	return d
}

func TestColorBipartiteSmall(t *testing.T) {
	edges := []Edge{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0, 0}} // multigraph
	colors, nc := ColorBipartite(edges, 2, 2)
	if want := maxDegree(edges, 2, 2); nc != want {
		t.Fatalf("numColors = %d, want Delta = %d", nc, want)
	}
	checkColoring(t, edges, colors, nc, 2, 2)
}

func TestColorBipartiteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nU := 1 + rng.Intn(8)
		nV := 1 + rng.Intn(8)
		ne := rng.Intn(120)
		edges := make([]Edge, ne)
		for i := range edges {
			edges[i] = Edge{U: rng.Intn(nU), V: rng.Intn(nV)}
		}
		colors, nc := ColorBipartite(edges, nU, nV)
		if ne == 0 {
			continue
		}
		if want := maxDegree(edges, nU, nV); nc != want {
			t.Fatalf("trial %d: numColors = %d, want %d", trial, nc, want)
		}
		checkColoring(t, edges, colors, nc, nU, nV)
	}
}

func TestColorBipartiteRegularIsPerfectMatchings(t *testing.T) {
	// A random d-regular bipartite multigraph: each color class must contain
	// exactly n edges (a perfect matching).
	rng := rand.New(rand.NewSource(12))
	n, d := 6, 5
	var edges []Edge
	for rep := 0; rep < d; rep++ {
		perm := rng.Perm(n)
		for u, v := range perm {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	colors, nc := ColorBipartite(edges, n, n)
	if nc != d {
		t.Fatalf("numColors = %d, want %d", nc, d)
	}
	checkColoring(t, edges, colors, nc, n, n)
	count := make([]int, nc)
	for _, c := range colors {
		count[c]++
	}
	for c, cnt := range count {
		if cnt != n {
			t.Fatalf("color %d has %d edges, want %d", c, cnt, n)
		}
	}
}

func TestColorBipartiteProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const nU, nV = 5, 7
		edges := make([]Edge, 0, len(raw))
		for _, r := range raw {
			edges = append(edges, Edge{U: int(r) % nU, V: int(r>>4) % nV})
		}
		colors, nc := ColorBipartite(edges, nU, nV)
		if len(edges) == 0 {
			return true
		}
		if nc != maxDegree(edges, nU, nV) {
			return false
		}
		seen := map[[3]int]bool{}
		for i, e := range edges {
			if colors[i] < 0 || colors[i] >= nc {
				return false
			}
			ku := [3]int{0, e.U, colors[i]}
			kv := [3]int{1, e.V, colors[i]}
			if seen[ku] || seen[kv] {
				return false
			}
			seen[ku] = true
			seen[kv] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// applySchedule plays a schedule over an in-memory matrix plus the free
// intra-column moves, and checks it implements the transform.
func applySchedule(t *testing.T, sh matrix.Shape, f matrix.Transform, s *Schedule) {
	t.Helper()
	own := ColumnOwner(sh)
	if err := s.Validate(own, own, sh.K); err != nil {
		t.Fatal(err)
	}
	n := sh.N()
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i + 1)
	}
	out := make([]int64, n)
	// Free local moves.
	moved := make([]bool, n)
	for src := 0; src < n; src++ {
		dst := f(sh, src)
		if sh.Col(src) == sh.Col(dst) {
			out[dst] = data[src]
			moved[src] = true
		}
	}
	for _, cyc := range s.Cycles {
		for _, a := range cyc {
			if moved[a.Src] {
				t.Fatalf("position %d scheduled but is a local move", a.Src)
			}
			if want := f(sh, a.Src); want != a.Dst {
				t.Fatalf("move %d->%d disagrees with transform dst %d", a.Src, a.Dst, want)
			}
			out[a.Dst] = data[a.Src]
			moved[a.Src] = true
		}
	}
	for i, ok := range moved {
		if !ok {
			t.Fatalf("position %d never moved", i)
		}
	}
	for dst := 0; dst < n; dst++ {
		// out[f(src)] == data[src] for all src <=> out is the permuted data.
		if out[dst] == 0 {
			t.Fatalf("destination %d never written", dst)
		}
	}
}

func TestTransposeClosedMatchesPaperBound(t *testing.T) {
	for _, sh := range []matrix.Shape{{M: 2, K: 2}, {M: 6, K: 3}, {M: 12, K: 4}, {M: 64, K: 8}} {
		s := TransposeClosed(sh)
		if s.NumCycles() != sh.M {
			t.Errorf("shape %v: %d cycles, want m=%d", sh, s.NumCycles(), sh.M)
		}
		applySchedule(t, sh, matrix.Transpose, s)
	}
}

func TestShiftClosedSchedules(t *testing.T) {
	for _, sh := range []matrix.Shape{{M: 6, K: 3}, {M: 12, K: 4}, {M: 64, K: 8}} {
		up := UpShiftClosed(sh)
		if up.NumCycles() != sh.M/2 {
			t.Errorf("upshift %v: %d cycles, want %d", sh, up.NumCycles(), sh.M/2)
		}
		applySchedule(t, sh, matrix.UpShift, up)
		down := DownShiftClosed(sh)
		if down.NumCycles() != sh.M/2 {
			t.Errorf("downshift %v: %d cycles, want %d", sh, down.NumCycles(), sh.M/2)
		}
		applySchedule(t, sh, matrix.DownShift, down)
	}
}

func TestRouteImplementsAllTransforms(t *testing.T) {
	shapes := []matrix.Shape{{M: 6, K: 3}, {M: 12, K: 4}, {M: 20, K: 5}}
	transforms := map[string]matrix.Transform{
		"transpose":      matrix.Transpose,
		"untranspose":    matrix.Untranspose,
		"un-diagonalize": matrix.UnDiagonalize,
		"up-shift":       matrix.UpShift,
		"down-shift":     matrix.DownShift,
	}
	for _, sh := range shapes {
		own := ColumnOwner(sh)
		for name, f := range transforms {
			s := Route(TransformMoves(sh, f), own, own, sh.K)
			if s.NumCycles() > sh.M {
				t.Errorf("%s %v: %d cycles > m=%d (suboptimal class split?)", name, sh, s.NumCycles(), sh.M)
			}
			applySchedule(t, sh, f, s)
		}
	}
}

func TestForTransformDispatch(t *testing.T) {
	sh := matrix.Shape{M: 12, K: 4}
	kinds := map[TransformKind]matrix.Transform{
		KindTranspose:     matrix.Transpose,
		KindUnDiagonalize: matrix.UnDiagonalize,
		KindUpShift:       matrix.UpShift,
		KindDownShift:     matrix.DownShift,
		KindUntranspose:   matrix.Untranspose,
	}
	for kind, f := range kinds {
		applySchedule(t, sh, f, ForTransform(sh, kind))
	}
}

func TestKindOf(t *testing.T) {
	for _, name := range []string{"transpose", "un-diagonalize", "up-shift", "down-shift", "untranspose"} {
		if _, ok := KindOf(name); !ok {
			t.Errorf("KindOf(%q) not found", name)
		}
	}
	if _, ok := KindOf("sort columns"); ok {
		t.Error("KindOf should reject sort phases")
	}
}

func TestRouteChannelCap(t *testing.T) {
	// More simultaneous senders than channels: schedule must split classes.
	// 8 owners each send one element to owner (i+1)%8, with only 2 channels.
	var moves []Move
	for i := 0; i < 8; i++ {
		moves = append(moves, Move{Src: i, Dst: (i+1)%8 + 100})
	}
	srcOwn := func(pos int) int { return pos % 100 }
	dstOwn := func(pos int) int { return pos % 100 }
	s := Route(moves, srcOwn, dstOwn, 2)
	if err := s.Validate(srcOwn, dstOwn, 2); err != nil {
		t.Fatal(err)
	}
	if s.NumMoves() != 8 {
		t.Fatalf("moves = %d, want 8", s.NumMoves())
	}
	if s.NumCycles() != 4 {
		t.Errorf("cycles = %d, want 4 (8 moves / 2 channels)", s.NumCycles())
	}
}

func TestRouteDropsLocalMoves(t *testing.T) {
	moves := []Move{{0, 1}, {2, 3}}
	own := func(pos int) int { return pos / 2 } // 0,1 same owner; 2,3 same owner
	s := Route(moves, own, own, 4)
	if s.NumMoves() != 0 {
		t.Fatalf("local moves scheduled: %d", s.NumMoves())
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	own := func(pos int) int { return pos }
	bad := []*Schedule{
		{Cycles: [][]Assign{{{Src: 0, Dst: 1, Ch: 0}, {Src: 2, Dst: 3, Ch: 0}}}}, // channel collision
		{Cycles: [][]Assign{{{Src: 0, Dst: 1, Ch: 0}, {Src: 0, Dst: 2, Ch: 1}}}}, // double send
		{Cycles: [][]Assign{{{Src: 0, Dst: 1, Ch: 0}, {Src: 2, Dst: 1, Ch: 1}}}}, // double receive
		{Cycles: [][]Assign{{{Src: 0, Dst: 1, Ch: 7}}}},                          // channel out of range
		{Cycles: [][]Assign{{{Src: 1, Dst: 1, Ch: 0}}}},                          // intra-owner
	}
	for i, s := range bad {
		if err := s.Validate(own, own, 2); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func BenchmarkColorBipartiteRegular(b *testing.B) {
	// The un-diagonalize coloring workload at m=4096, k=16.
	sh := matrix.Shape{M: 4096, K: 16}
	for i := 0; i < b.N; i++ {
		RouteMatching(sh, matrix.UnDiagonalize)
	}
}
