// Package stats provides the small measurement toolkit used by the
// experiment harness: aligned text tables, series, and least-squares fits
// for verifying asymptotic claims (e.g. that measured cycles grow linearly
// in n/k).
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned text table: a header row plus data rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case float32:
			row[i] = formatFloat(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case math.Abs(x) >= 1000:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 1:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}

// String renders the table with aligned columns. Rows wider than the header
// are allowed; the extra columns get empty headers.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// LogLogSlope fits log(y) = a + b*log(x) by least squares and returns the
// exponent b — the empirical growth order of y in x. Points with
// non-positive coordinates are skipped; at least two valid points are
// required (returns NaN otherwise).
func LogLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	return slope(lx, ly)
}

// LinearSlope fits y = a + b*x by least squares and returns b.
func LinearSlope(xs, ys []float64) float64 { return slope(xs, ys) }

func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if len(xs) < 2 || len(xs) != len(ys) {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Ratio summarizes y/x over a series: min, max and mean. It is used to show
// that a measured quantity is a constant multiple of a predicted one.
type Ratio struct {
	Min, Max, Mean float64
}

// Ratios computes the ratio summary of ys[i]/xs[i], skipping zero xs.
func Ratios(xs, ys []float64) Ratio {
	r := Ratio{Min: math.Inf(1), Max: math.Inf(-1)}
	n := 0
	sum := 0.0
	for i := range xs {
		if xs[i] == 0 {
			continue
		}
		v := ys[i] / xs[i]
		if v < r.Min {
			r.Min = v
		}
		if v > r.Max {
			r.Max = v
		}
		sum += v
		n++
	}
	if n == 0 {
		return Ratio{}
	}
	r.Mean = sum / float64(n)
	return r
}

func (r Ratio) String() string {
	return fmt.Sprintf("min=%.3f mean=%.3f max=%.3f", r.Min, r.Mean, r.Max)
}
