package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "n", "cycles", "ratio")
	tb.AddRow(1024, int64(256), 0.25)
	tb.AddRow(2048, int64(512), 0.25)
	s := tb.String()
	if !strings.Contains(s, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "cycles") || !strings.Contains(s, "2048") {
		t.Errorf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
}

func TestTableRaggedRows(t *testing.T) {
	// Rows may be wider than the header (the extra columns get empty
	// headers) or narrower; rendering must handle both without panicking.
	tb := NewTable("ragged", "a", "b")
	tb.AddRow(1, 2, 33333, 4)
	tb.AddRow(5)
	s := tb.String()
	if !strings.Contains(s, "33333") || !strings.Contains(s, "4") {
		t.Errorf("extra columns missing:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// The separator must span the widest row, not just the header.
	if !strings.Contains(lines[2], "-----") {
		t.Errorf("separator does not cover the extra columns:\n%s", s)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 3x^2 -> slope 2.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if got := LogLogSlope(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Errorf("slope = %f, want 2", got)
	}
	// Linear: slope 1.
	for i, x := range xs {
		ys[i] = 7 * x
	}
	if got := LogLogSlope(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Errorf("slope = %f, want 1", got)
	}
}

func TestLogLogSlopeSkipsNonPositive(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{5, 2, 4, 8}
	if got := LogLogSlope(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Errorf("slope = %f, want 1", got)
	}
	if !math.IsNaN(LogLogSlope([]float64{1}, []float64{1})) {
		t.Error("expected NaN for single point")
	}
}

func TestLinearSlope(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11}
	if got := LinearSlope(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Errorf("slope = %f, want 2", got)
	}
}

func TestRatios(t *testing.T) {
	r := Ratios([]float64{1, 2, 0, 4}, []float64{2, 6, 9, 4})
	if r.Min != 1 || r.Max != 3 || math.Abs(r.Mean-2) > 1e-9 {
		t.Errorf("ratios = %+v", r)
	}
	if got := Ratios(nil, nil); got.Mean != 0 {
		t.Errorf("empty ratios = %+v", got)
	}
	if !strings.Contains(r.String(), "mean=2.000") {
		t.Errorf("String() = %s", r.String())
	}
}
