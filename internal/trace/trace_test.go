package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"unsafe"
)

// syntheticTrace builds a recorder with one event of every kind across two
// phases, plus enough traffic to make the summaries non-trivial.
func syntheticTrace() *Recorder {
	r := New(3, 2, 64)
	load := r.PhaseID("load")
	sortPh := r.PhaseID("sort")
	r.Record(Event{Cycle: 0, Proc: 0, Ch: -1, Phase: load, Kind: KindPhase})
	r.Record(Event{Cycle: 0, Proc: 0, Ch: 0, Phase: load, Arg: 41, Kind: KindWrite})
	r.Record(Event{Cycle: 0, Proc: 1, Ch: 0, Phase: load, Arg: 41, Kind: KindRead})
	r.Record(Event{Cycle: 0, Proc: 2, Ch: 1, Phase: load, Kind: KindSilence})
	r.Record(Event{Cycle: 1, Proc: 0, Ch: -1, Phase: load, Kind: KindIdle})
	r.Record(Event{Cycle: 1, Proc: 1, Ch: 1, Phase: load, Arg: -7, Kind: KindWrite})
	r.Record(Event{Cycle: 1, Proc: 2, Ch: 1, Phase: load, Arg: FaultDrop, Kind: KindFault})
	r.Record(Event{Cycle: 1, Proc: 2, Ch: 1, Phase: load, Kind: KindSilence})
	r.Record(Event{Cycle: 2, Proc: 1, Ch: -1, Phase: sortPh, Kind: KindPhase})
	r.Record(Event{Cycle: 2, Proc: 1, Ch: 0, Phase: sortPh, Arg: 9, Kind: KindWrite})
	r.Record(Event{Cycle: 2, Proc: 2, Ch: 0, Phase: sortPh, Arg: 1, Kind: KindCollision})
	r.Record(Event{Cycle: 3, Proc: 2, Ch: -1, Phase: -1, Arg: FaultCrash, Kind: KindFault})
	return r
}

// TestEventSize pins the fixed binary event size: the whole point of the
// ring design is that events are small value types with no pointers.
func TestEventSize(t *testing.T) {
	if s := unsafe.Sizeof(Event{}); s != 32 {
		t.Fatalf("Event is %d bytes, want 32", s)
	}
}

// TestJSONLRoundTrip is the round-trip golden test: record → export JSONL →
// re-parse → re-export must be byte-identical, and the parsed events must
// equal the originals.
func TestJSONLRoundTrip(t *testing.T) {
	r := syntheticTrace()
	var first bytes.Buffer
	if err := r.WriteJSONL(&first); err != nil {
		t.Fatal(err)
	}
	events, phases, err := ParseJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if want := r.Events(); !reflect.DeepEqual(events, want) {
		t.Fatalf("parsed events differ:\n got %+v\nwant %+v", events, want)
	}
	var second bytes.Buffer
	if err := WriteJSONL(&second, events, phases); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-export not byte-identical:\n--- first ---\n%s--- second ---\n%s", &first, &second)
	}
}

// TestRingWrap: a full ring overwrites its oldest events, keeps the newest
// in order, and accounts for the loss.
func TestRingWrap(t *testing.T) {
	r := New(2, 1, 0) // capacity clamps to the 64 minimum
	const total = 150
	for i := 0; i < total; i++ {
		r.Record(Event{Cycle: int64(i), Proc: int32(i % 2), Ch: 0, Phase: -1, Arg: int64(i), Kind: KindWrite})
	}
	if got := r.Total(); got != total {
		t.Fatalf("Total = %d, want %d", got, total)
	}
	// 75 events per proc into 64-slot rings: 11 dropped each.
	if got, want := r.Dropped(), int64(2*(75-64)); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	evs := r.Events()
	if len(evs) != 2*64 {
		t.Fatalf("retained %d events, want %d", len(evs), 2*64)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("events out of order at %d: %d after %d", i, evs[i].Cycle, evs[i-1].Cycle)
		}
	}
	// The oldest retained event per proc is total-1 - 2*63 or so; just check
	// the newest survived.
	last := evs[len(evs)-1]
	if last.Arg != total-1 {
		t.Fatalf("newest event lost: got arg %d, want %d", last.Arg, total-1)
	}
	r.Reset()
	if r.Total() != 0 || len(r.Events()) != 0 || len(r.Phases()) != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}

// TestPerfettoExport: the export must be valid JSON in the trace-event
// schema with per-channel and per-processor thread metadata and phase spans.
func TestPerfettoExport(t *testing.T) {
	r := syntheticTrace()
	var buf bytes.Buffer
	if err := r.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	var chThreads, procThreads, phaseSpans, writeSpans int
	for _, e := range f.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name" && e.Pid == pidChans:
			chThreads++
		case e.Ph == "M" && e.Name == "thread_name" && e.Pid == pidProcs:
			procThreads++
		case e.Ph == "X" && e.Pid == pidPhases:
			phaseSpans++
			if e.Dur <= 0 {
				t.Fatalf("phase span %q has non-positive duration %d", e.Name, e.Dur)
			}
		case e.Ph == "X" && e.Pid == pidChans:
			writeSpans++
		}
	}
	if chThreads != 2 || procThreads != 3 {
		t.Fatalf("thread metadata: %d channel / %d processor threads, want 2 / 3", chThreads, procThreads)
	}
	if phaseSpans < 2 {
		t.Fatalf("phase spans = %d, want >= 2 (load, sort)", phaseSpans)
	}
	if writeSpans != 3 {
		t.Fatalf("channel write spans = %d, want 3", writeSpans)
	}
}

// TestSummarize checks the per-phase rollup counters and utilization.
func TestSummarize(t *testing.T) {
	r := syntheticTrace()
	sums := r.Summaries()
	if len(sums) != 3 { // load, sort, "" (the phase-less crash event)
		t.Fatalf("got %d phase summaries (%+v), want 3", len(sums), sums)
	}
	load := sums[0]
	if load.Phase != "load" || load.Cycles != 2 || load.Writes != 2 ||
		load.Silences != 2 || load.Reads != 1 || load.Idles != 1 || load.Faults != 1 {
		t.Fatalf("load summary wrong: %+v", load)
	}
	if want := 2.0 / (2.0 * 2.0); load.Utilization != want {
		t.Fatalf("load utilization = %v, want %v", load.Utilization, want)
	}
	if load.PerChannel[0] != 1 || load.PerChannel[1] != 1 {
		t.Fatalf("load per-channel = %v, want [1 1]", load.PerChannel)
	}
	sortS := sums[1]
	if sortS.Phase != "sort" || sortS.Writes != 1 || sortS.Collisions != 1 {
		t.Fatalf("sort summary wrong: %+v", sortS)
	}
}
