package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL is the line-oriented interchange format of a captured trace: one
// JSON object per event, fields in a fixed order, phase ids resolved to
// names. It round-trips losslessly — parse followed by re-export yields
// byte-identical output — which the golden tests rely on.

// lineEvent is the JSONL wire schema of one event. Field order here is the
// field order on the wire (encoding/json emits struct fields in declaration
// order), so exports are canonical.
type lineEvent struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	Proc  int32  `json:"proc"`
	Ch    int32  `json:"ch"`
	Phase string `json:"phase"`
	Arg   int64  `json:"arg"`
}

// WriteJSONL writes events as JSONL. phases is the id->name table that
// resolves Event.Phase (out-of-range ids export as "").
func WriteJSONL(w io.Writer, events []Event, phases []string) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends exactly one '\n' per value
	for i := range events {
		e := &events[i]
		le := lineEvent{
			Cycle: e.Cycle,
			Kind:  e.Kind.String(),
			Proc:  e.Proc,
			Ch:    e.Ch,
			Arg:   e.Arg,
		}
		if e.Phase >= 0 && int(e.Phase) < len(phases) {
			le.Phase = phases[e.Phase]
		}
		if err := enc.Encode(&le); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL parses a JSONL trace back into events plus the phase-name
// table (re-interned in first-seen order; events before any named phase get
// Phase == -1). It is the exact inverse of WriteJSONL up to phase-id
// renumbering, which the exporters never expose.
func ParseJSONL(r io.Reader) ([]Event, []string, error) {
	var (
		events   []Event
		phases   []string
		phaseIdx = map[string]int32{}
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var le lineEvent
		if err := json.Unmarshal(line, &le); err != nil {
			return nil, nil, fmt.Errorf("trace: jsonl line %d: %w", lineNo, err)
		}
		kind := parseKind(le.Kind)
		if kind == 0 {
			return nil, nil, fmt.Errorf("trace: jsonl line %d: unknown kind %q", lineNo, le.Kind)
		}
		phase := int32(-1)
		if le.Phase != "" {
			id, ok := phaseIdx[le.Phase]
			if !ok {
				id = int32(len(phases))
				phases = append(phases, le.Phase)
				phaseIdx[le.Phase] = id
			}
			phase = id
		}
		events = append(events, Event{
			Cycle: le.Cycle,
			Arg:   le.Arg,
			Proc:  le.Proc,
			Ch:    le.Ch,
			Phase: phase,
			Kind:  kind,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("trace: jsonl: %w", err)
	}
	return events, phases, nil
}

// WriteJSONL exports the recorder's retained events as JSONL.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, r.Events(), r.phases)
}
