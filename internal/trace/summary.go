package trace

// Per-phase rollup of a captured trace: the channel-utilization /
// collision / silence timeline the paper's round-complexity arguments are
// made of, computed purely from recorded events so it works on re-parsed
// JSONL as well as on a live Recorder.

// PhaseSummary aggregates the events of one accounting phase. Phases appear
// in first-event order; events recorded before any phase marker are grouped
// under the empty name.
type PhaseSummary struct {
	Phase string `json:"phase"`
	// FirstCycle and LastCycle bound the phase's cycle range as observed in
	// the trace (ring overwrites may clip the front of early phases).
	FirstCycle int64 `json:"first_cycle"`
	LastCycle  int64 `json:"last_cycle"`
	// Cycles is the number of distinct cycles with at least one event.
	Cycles int64 `json:"cycles"`
	// Writes / Reads / Silences / Idles count cycle operations; Silences is
	// reads that observed nothing (unwritten channel, outage or drop).
	Writes   int64 `json:"writes"`
	Reads    int64 `json:"reads"`
	Silences int64 `json:"silences"`
	Idles    int64 `json:"idles"`
	// Collisions counts model violations (two writers on one channel).
	Collisions int64 `json:"collisions"`
	// Faults counts fault-plane events (drops, corruption, outage losses,
	// crash-stops) attributed to the phase.
	Faults int64 `json:"faults"`
	// PerChannel[c] is the number of writes carried by channel c.
	PerChannel []int64 `json:"per_channel,omitempty"`
	// Utilization is Writes / (Cycles * k): the fraction of channel-cycles
	// carrying a message while the phase was active.
	Utilization float64 `json:"utilization"`
}

// Summarize rolls events (in canonical order, see Recorder.Events) up into
// per-phase summaries for a network with k channels.
func Summarize(events []Event, phases []string, k int) []PhaseSummary {
	name := func(id int32) string {
		if id >= 0 && int(id) < len(phases) {
			return phases[id]
		}
		return ""
	}
	var (
		out []PhaseSummary
		idx = map[string]int{}
		// lastCycle[i] tracks the last cycle counted for summary i so each
		// distinct cycle is counted once even though it spawns many events.
		lastCycle = map[int]int64{}
	)
	for i := range events {
		e := &events[i]
		ph := name(e.Phase)
		j, ok := idx[ph]
		if !ok {
			j = len(out)
			idx[ph] = j
			out = append(out, PhaseSummary{Phase: ph, FirstCycle: e.Cycle, LastCycle: e.Cycle})
			lastCycle[j] = e.Cycle - 1
		}
		s := &out[j]
		if e.Cycle < s.FirstCycle {
			s.FirstCycle = e.Cycle
		}
		if e.Cycle > s.LastCycle {
			s.LastCycle = e.Cycle
		}
		if lastCycle[j] != e.Cycle {
			s.Cycles++
			lastCycle[j] = e.Cycle
		}
		switch e.Kind {
		case KindWrite:
			s.Writes++
			if e.Ch >= 0 {
				if s.PerChannel == nil {
					s.PerChannel = make([]int64, k)
				}
				if int(e.Ch) < len(s.PerChannel) {
					s.PerChannel[e.Ch]++
				}
			}
		case KindRead:
			s.Reads++
		case KindSilence:
			s.Silences++
		case KindIdle:
			s.Idles++
		case KindCollision:
			s.Collisions++
		case KindFault:
			s.Faults++
		}
	}
	for i := range out {
		s := &out[i]
		if s.Cycles > 0 && k > 0 {
			s.Utilization = float64(s.Writes) / (float64(s.Cycles) * float64(k))
		}
	}
	return out
}

// Summaries rolls the recorder's retained events up per phase.
func (r *Recorder) Summaries() []PhaseSummary {
	return Summarize(r.Events(), r.phases, r.channels)
}
