package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Perfetto export: the Chrome trace-event JSON format, loadable in
// https://ui.perfetto.dev or chrome://tracing. One synthetic "process" per
// track family keeps the UI grouped:
//
//	pid 1 "phases"     — one thread, a complete ("X") span per contiguous
//	                     run of cycles in the same accounting phase;
//	pid 2 "channels"   — one thread per broadcast channel; every write is a
//	                     1-cycle span named after the writer, collisions and
//	                     outages are instants on the channel's track;
//	pid 3 "processors" — one thread per processor; every cycle op (write,
//	                     read, silence, idle) is a 1-cycle span, faults that
//	                     strike the processor (drops, corruption, a crash)
//	                     are instants.
//
// Timestamps are in the format's native microseconds with 1 cycle = 1 us,
// so the cycle index reads directly off the time axis.

const (
	pidPhases = 1
	pidChans  = 2
	pidProcs  = 3
)

// pfEvent is one trace-event object. Args maps marshal with sorted keys,
// so the export is canonical.
type pfEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type pfFile struct {
	DisplayTimeUnit string    `json:"displayTimeUnit"`
	TraceEvents     []pfEvent `json:"traceEvents"`
}

// WritePerfetto writes events as Chrome trace-event JSON for a network of p
// processors and k channels. phases resolves Event.Phase ids.
func WritePerfetto(w io.Writer, events []Event, phases []string, p, k int) error {
	evs := make([]pfEvent, 0, 2*(p+k)+len(events)+8)

	meta := func(pid int, procName string) {
		evs = append(evs, pfEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": procName},
		})
	}
	thread := func(pid, tid int, name string) {
		evs = append(evs, pfEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(pidPhases, "phases")
	thread(pidPhases, 0, "phase")
	meta(pidChans, "channels")
	for c := 0; c < k; c++ {
		thread(pidChans, c, fmt.Sprintf("ch%d", c))
	}
	meta(pidProcs, "processors")
	for id := 0; id < p; id++ {
		thread(pidProcs, id, fmt.Sprintf("P%d", id))
	}

	phaseName := func(id int32) string {
		if id >= 0 && int(id) < len(phases) {
			return phases[id]
		}
		return "(unphased)"
	}

	// Phase spans: walk the (cycle-sorted) events, emitting one span per
	// contiguous cycle run sharing a phase id. Cycles carry their phase on
	// every event, so any event of the cycle determines it.
	spanStart, spanEnd := int64(-1), int64(-1)
	spanPhase := int32(-2) // sentinel distinct from the -1 "unphased" id
	flush := func() {
		if spanPhase == -2 {
			return
		}
		evs = append(evs, pfEvent{
			Name: phaseName(spanPhase), Ph: "X",
			Ts: spanStart, Dur: spanEnd - spanStart + 1,
			Pid: pidPhases, Tid: 0,
		})
	}
	for i := range events {
		e := &events[i]
		if e.Kind == KindFault && e.Arg == FaultCrash {
			continue // crash events are recorded post-run, phase-less
		}
		if e.Phase != spanPhase || e.Cycle > spanEnd+1 {
			flush()
			spanPhase, spanStart = e.Phase, e.Cycle
		}
		spanEnd = e.Cycle
	}
	flush()

	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindWrite:
			evs = append(evs, pfEvent{
				Name: fmt.Sprintf("P%d", e.Proc), Ph: "X", Ts: e.Cycle, Dur: 1,
				Pid: pidChans, Tid: int(e.Ch),
				Args: map[string]any{"x": e.Arg},
			})
			evs = append(evs, pfEvent{
				Name: "write", Ph: "X", Ts: e.Cycle, Dur: 1,
				Pid: pidProcs, Tid: int(e.Proc),
				Args: map[string]any{"ch": e.Ch, "x": e.Arg},
			})
		case KindRead:
			evs = append(evs, pfEvent{
				Name: "read", Ph: "X", Ts: e.Cycle, Dur: 1,
				Pid: pidProcs, Tid: int(e.Proc),
				Args: map[string]any{"ch": e.Ch, "x": e.Arg},
			})
		case KindSilence:
			evs = append(evs, pfEvent{
				Name: "silence", Ph: "X", Ts: e.Cycle, Dur: 1,
				Pid: pidProcs, Tid: int(e.Proc),
				Args: map[string]any{"ch": e.Ch},
			})
		case KindIdle:
			evs = append(evs, pfEvent{
				Name: "idle", Ph: "X", Ts: e.Cycle, Dur: 1,
				Pid: pidProcs, Tid: int(e.Proc),
			})
		case KindCollision:
			evs = append(evs, pfEvent{
				Name: "collision", Ph: "i", Ts: e.Cycle,
				Pid: pidChans, Tid: int(e.Ch), S: "t",
				Args: map[string]any{"procs": []int32{int32(e.Arg), e.Proc}},
			})
		case KindFault:
			pe := pfEvent{
				Name: FaultName(e.Arg), Ph: "i", Ts: e.Cycle, S: "t",
				Pid: pidProcs, Tid: int(e.Proc),
			}
			if e.Arg == FaultOutage {
				// An outage kills the channel, not the writer: show it there.
				pe.Pid, pe.Tid = pidChans, int(e.Ch)
			}
			evs = append(evs, pe)
		case KindPhase:
			evs = append(evs, pfEvent{
				Name: "phase:" + phaseName(e.Phase), Ph: "i", Ts: e.Cycle, S: "t",
				Pid: pidProcs, Tid: int(e.Proc),
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&pfFile{DisplayTimeUnit: "ms", TraceEvents: evs})
}

// WritePerfetto exports the recorder's retained events as Chrome
// trace-event JSON sized to the recorder's network shape.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	return WritePerfetto(w, r.Events(), r.phases, r.procs, r.channels)
}
