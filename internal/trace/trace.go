// Package trace is the engine's structured cycle-tracing subsystem: a
// near-zero-overhead recorder of fixed-size binary events plus exporters
// that turn a captured run into JSONL, Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing) and per-phase channel-utilization summaries.
//
// The MCB model of the paper is defined cycle-by-cycle — who writes, who
// reads, which channels sit silent — and this package makes that structure
// observable mechanically. A Recorder holds one preallocated ring buffer per
// processor; the engine's cycle resolver appends one Event per observable
// fact (write, read, silence, idle, collision, fault, phase switch). Events
// are 32-byte value types, appends never allocate, and a full ring silently
// overwrites its oldest events (the drop count is retained), so steady-state
// tracing is O(1) amortized per event.
//
// Concurrency: a Recorder is intentionally NOT thread-safe. The engine's
// cycle resolver runs on exactly one goroutine per cycle and consecutive
// cycles are separated by the lock-step barrier, so resolver-side appends
// are already serialized; wrapping them in locks would tax the hot path for
// no benefit. Export only after the run has returned.
package trace

import "sort"

// Kind identifies what an Event records. The zero value is invalid so that
// an accidentally zeroed event is detectable.
type Kind uint8

const (
	// KindWrite: processor Proc broadcast on channel Ch; Arg is the
	// message's X payload field (the primary datum in every protocol here).
	KindWrite Kind = iota + 1
	// KindRead: processor Proc read channel Ch and observed a message;
	// Arg is the delivered X payload (post-fault-injection).
	KindRead
	// KindSilence: processor Proc read channel Ch and observed silence
	// (nothing written, an outage, or a dropped/discarded delivery).
	KindSilence
	// KindIdle: processor Proc spent the cycle without touching a channel.
	KindIdle
	// KindCollision: processor Proc wrote channel Ch already claimed by
	// processor Arg this cycle — the model's "computation fails".
	KindCollision
	// KindFault: the fault plane intervened; Arg is a Fault* code.
	KindFault
	// KindPhase: processor Proc's phase marker switched the active
	// accounting phase to Phase.
	KindPhase
)

// kindNames maps Kind to its stable wire name (JSONL, Perfetto).
var kindNames = [...]string{
	KindWrite:     "write",
	KindRead:      "read",
	KindSilence:   "silence",
	KindIdle:      "idle",
	KindCollision: "collision",
	KindFault:     "fault",
	KindPhase:     "phase",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "invalid"
}

// parseKind inverts Kind.String; returns 0 for unknown names.
func parseKind(s string) Kind {
	for k, name := range kindNames {
		if name == s {
			return Kind(k)
		}
	}
	return 0
}

// Fault codes carried in Event.Arg when Kind == KindFault.
const (
	// FaultDrop: the delivery to reader Proc on Ch was suppressed.
	FaultDrop int64 = iota + 1
	// FaultCorrupt: reader Proc received a garbled payload on Ch.
	FaultCorrupt
	// FaultDetected: a corrupted delivery was caught by the checksum and
	// discarded; reader Proc observed silence.
	FaultDetected
	// FaultOutage: processor Proc's broadcast on Ch fell into an outage
	// window (all readers observed silence).
	FaultOutage
	// FaultCrash: processor Proc crash-stopped after completing Cycle
	// cycle operations.
	FaultCrash
)

// faultNames maps Fault* codes to their stable wire names.
var faultNames = [...]string{
	FaultDrop:     "drop",
	FaultCorrupt:  "corrupt",
	FaultDetected: "corrupt-detected",
	FaultOutage:   "outage",
	FaultCrash:    "crash",
}

// FaultName returns the stable name of a Fault* code ("fault" for unknown).
func FaultName(code int64) string {
	if code > 0 && code < int64(len(faultNames)) {
		return faultNames[code]
	}
	return "fault"
}

// Event is one recorded fact, 32 bytes, no pointers. Field meaning varies
// slightly with Kind (see the Kind constants); Phase is the id of the
// accounting phase active when the event was recorded, -1 before the first
// phase marker. Ch is -1 for events without a channel (idle, phase, crash).
type Event struct {
	Cycle int64
	Arg   int64
	Proc  int32
	Ch    int32
	Phase int32
	Kind  Kind
	_     [3]byte
}

// ring is one processor's event buffer: a preallocated circular store with
// a monotone append counter. When n exceeds the capacity the oldest events
// are overwritten; n-cap(buf) of them have been dropped.
type ring struct {
	buf []Event
	n   uint64
}

func (r *ring) append(e Event) {
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
}

// Recorder collects the events of one (or several consecutive) engine runs.
// Construct with New; pass to mcb.Config.Recorder; export afterwards.
type Recorder struct {
	procs    int
	channels int
	rings    []ring
	phases   []string
	phaseIdx map[string]int32
}

// New returns a Recorder for a network of procs processors and channels
// broadcast channels, with room for eventsPerProc events in each
// processor's ring (values below 64 are raised to 64). All buffers are
// allocated here; recording never allocates.
func New(procs, channels, eventsPerProc int) *Recorder {
	if procs < 1 {
		procs = 1
	}
	if channels < 1 {
		channels = 1
	}
	if eventsPerProc < 64 {
		eventsPerProc = 64
	}
	r := &Recorder{
		procs:    procs,
		channels: channels,
		rings:    make([]ring, procs),
		phaseIdx: make(map[string]int32),
	}
	for i := range r.rings {
		r.rings[i].buf = make([]Event, eventsPerProc)
	}
	return r
}

// Procs returns the processor count the recorder was sized for.
func (r *Recorder) Procs() int { return r.procs }

// Channels returns the channel count the recorder was built for.
func (r *Recorder) Channels() int { return r.channels }

// PhaseID interns a phase name and returns its stable id (dense, in
// first-seen order). Called by the engine on phase switches only (cold).
func (r *Recorder) PhaseID(name string) int32 {
	if id, ok := r.phaseIdx[name]; ok {
		return id
	}
	id := int32(len(r.phases))
	r.phases = append(r.phases, name)
	r.phaseIdx[name] = id
	return id
}

// Phases returns a copy of the interned phase-name table, indexed by id.
func (r *Recorder) Phases() []string {
	return append([]string(nil), r.phases...)
}

// Record appends one event to the ring of e.Proc. Allocation-free; the
// oldest event of a full ring is overwritten. e.Proc must be in [0, Procs).
func (r *Recorder) Record(e Event) {
	r.rings[e.Proc].append(e)
}

// Total returns the number of events recorded (including overwritten ones).
func (r *Recorder) Total() int64 {
	var n int64
	for i := range r.rings {
		n += int64(r.rings[i].n)
	}
	return n
}

// Dropped returns the number of events lost to ring overwrites. A non-zero
// value means the rings were sized below the run length; the retained
// events are the most recent per processor.
func (r *Recorder) Dropped() int64 {
	var n int64
	for i := range r.rings {
		if c := uint64(len(r.rings[i].buf)); r.rings[i].n > c {
			n += int64(r.rings[i].n - c)
		}
	}
	return n
}

// Reset clears all rings and the phase table so the recorder can be reused
// for an unrelated run. The buffers themselves are retained.
func (r *Recorder) Reset() {
	for i := range r.rings {
		r.rings[i].n = 0
	}
	r.phases = r.phases[:0]
	for k := range r.phaseIdx {
		delete(r.phaseIdx, k)
	}
}

// Events returns a merged snapshot of all retained events in the canonical
// order: by cycle, then processor id, then per-processor record order. The
// order is a pure function of the recorded events, so deterministic runs
// export deterministic traces.
func (r *Recorder) Events() []Event {
	type seqEvent struct {
		e   Event
		seq uint64
	}
	var all []seqEvent
	for i := range r.rings {
		rg := &r.rings[i]
		c := uint64(len(rg.buf))
		start := uint64(0)
		if rg.n > c {
			start = rg.n - c
		}
		for s := start; s < rg.n; s++ {
			all = append(all, seqEvent{e: rg.buf[s%c], seq: s})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.e.Cycle != b.e.Cycle {
			return a.e.Cycle < b.e.Cycle
		}
		if a.e.Proc != b.e.Proc {
			return a.e.Proc < b.e.Proc
		}
		return a.seq < b.seq
	})
	out := make([]Event, len(all))
	for i := range all {
		out[i] = all[i].e
	}
	return out
}
