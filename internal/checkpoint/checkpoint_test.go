package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Kind:           "sort",
		Algo:           "columnsort-gather",
		P:              4,
		K:              2,
		Phase:          3,
		PhaseName:      "columnsort:transpose",
		Attempt:        2,
		Resumes:        1,
		CyclesDone:     123,
		MessagesDone:   456,
		ReplayedCycles: 78,
		Order:          1,
		D:              5,
		M:              9,
		Threshold:      2,
		Iter:           1,
		Aux:            []int64{42, -7},
		Cards:          []int{3, 0, 2, 1},
		State: [][]Elem{
			{{V: -5, T: 1, P: 9}, {V: 0, T: 2, P: 0, Dummy: true}},
			nil,
			{{V: 7, T: -3, P: 1}},
			{{V: 1, T: 4, P: 2}, {V: 1, T: 5, P: 3}, {V: 2, T: 6, P: 4}},
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	enc, err := Encode(want)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Fatalf("round-trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	// Re-encoding the decoded snapshot must be byte-identical.
	enc2, err := Encode(got)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encode not byte-identical")
	}
}

// normalize maps nil and empty slices to a canonical form so DeepEqual
// compares content: the codec does not distinguish nil from empty.
func normalize(s *Snapshot) *Snapshot {
	c := s.Clone()
	if len(c.Aux) == 0 {
		c.Aux = nil
	}
	if len(c.Cards) == 0 {
		c.Cards = nil
	}
	for i, l := range c.State {
		if len(l) == 0 {
			c.State[i] = nil
		}
	}
	if len(c.State) == 0 {
		c.State = nil
	}
	return c
}

// TestCodecDeterministicAcrossGOMAXPROCS pins the acceptance criterion that
// encoding is byte-deterministic regardless of scheduler parallelism.
func TestCodecDeterministicAcrossGOMAXPROCS(t *testing.T) {
	var ref []byte
	for _, procs := range []int{1, 4, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		enc, err := Encode(sampleSnapshot())
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("Encode at GOMAXPROCS=%d: %v", procs, err)
		}
		if ref == nil {
			ref = enc
		} else if !bytes.Equal(ref, enc) {
			t.Fatalf("encoding differs at GOMAXPROCS=%d", procs)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
			if _, err := Decode(enc[:n]); err == nil {
				t.Fatalf("Decode accepted truncation to %d bytes", n)
			} else if !errors.Is(err, ErrInvalid) {
				t.Fatalf("truncation to %d: error %v does not wrap ErrInvalid", n, err)
			}
		}
	})

	t.Run("bit-flip", func(t *testing.T) {
		for _, pos := range []int{0, 5, len(enc) / 2, len(enc) - 1} {
			mut := append([]byte(nil), enc...)
			mut[pos] ^= 0x40
			_, err := Decode(mut)
			if err == nil {
				t.Fatalf("Decode accepted bit flip at offset %d", pos)
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("bit flip at %d: error %T is not *DecodeError", pos, err)
			}
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), enc...), 0, 0, 0)); err == nil {
			t.Fatal("Decode accepted trailing garbage")
		}
	})

	t.Run("bad-version", func(t *testing.T) {
		mut := append([]byte(nil), enc...)
		mut[4] = 99 // version byte
		// Re-stamp the checksum so only the version check can reject it.
		body := mut[:len(mut)-8]
		fixed, _ := Encode(sampleSnapshot())
		_ = fixed
		sum := fnv1a(body)
		for i := 0; i < 8; i++ {
			mut[len(body)+i] = byte(sum >> (8 * i))
		}
		_, err := Decode(mut)
		if err == nil || !errors.Is(err, ErrInvalid) {
			t.Fatalf("bad version: got %v", err)
		}
	})
}

func TestMemStore(t *testing.T) {
	st := NewMem()
	if s, err := st.Latest(); err != nil || s != nil {
		t.Fatalf("empty Latest = %v, %v", s, err)
	}
	a := sampleSnapshot()
	if err := st.Save(a); err != nil {
		t.Fatalf("Save: %v", err)
	}
	b := sampleSnapshot()
	b.Phase = 5
	if err := st.Save(b); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := st.Latest()
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if got.Phase != 5 {
		t.Fatalf("Latest.Phase = %d, want 5", got.Phase)
	}
	// The returned snapshot is a decoded copy: mutating it must not affect
	// the store.
	got.State[0][0].V = 999
	again, _ := st.Latest()
	if again.State[0][0].V == 999 {
		t.Fatal("Latest returned shared state")
	}
	if n := len(st.History()); n != 2 {
		t.Fatalf("History length = %d, want 2", n)
	}
	if err := st.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if s, _ := st.Latest(); s != nil {
		t.Fatal("Latest after Clear != nil")
	}
}

func TestDirStore(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDir(dir)
	if err != nil {
		t.Fatalf("NewDir: %v", err)
	}
	if s, err := st.Latest(); err != nil || s != nil {
		t.Fatalf("empty Latest = %v, %v", s, err)
	}
	a := sampleSnapshot()
	a.Phase = 1
	b := sampleSnapshot()
	b.Phase = 2
	if err := st.Save(a); err != nil {
		t.Fatalf("Save a: %v", err)
	}
	if err := st.Save(b); err != nil {
		t.Fatalf("Save b: %v", err)
	}

	// A second store over the same directory (a fresh process) resumes from
	// the latest file and continues the sequence.
	st2, err := NewDir(dir)
	if err != nil {
		t.Fatalf("NewDir 2: %v", err)
	}
	got, err := st2.Latest()
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if got == nil || got.Phase != 2 {
		t.Fatalf("Latest.Phase = %+v, want phase 2", got)
	}
	c := sampleSnapshot()
	c.Phase = 3
	if err := st2.Save(c); err != nil {
		t.Fatalf("Save c: %v", err)
	}
	names, seqs, err := st2.entries()
	if err != nil {
		t.Fatalf("entries: %v", err)
	}
	if len(names) != 3 || seqs[2] <= seqs[1] || seqs[1] <= seqs[0] {
		t.Fatalf("entries = %v seqs = %v, want 3 increasing", names, seqs)
	}

	// Corrupt the newest file: Latest must fall back to the previous one
	// (kill-mid-write resilience).
	newest := filepath.Join(dir, names[2])
	if err := os.WriteFile(newest, []byte("garbage"), 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	got, err = st2.Latest()
	if err != nil {
		t.Fatalf("Latest after corrupt: %v", err)
	}
	if got == nil || got.Phase != 2 {
		t.Fatalf("Latest after corrupt = %+v, want fallback to phase 2", got)
	}

	if err := st2.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if s, _ := st2.Latest(); s != nil {
		t.Fatal("Latest after Clear != nil")
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		t.Fatalf("leftover file after Clear: %s", e.Name())
	}
}

func TestSnapshotClone(t *testing.T) {
	a := sampleSnapshot()
	b := a.Clone()
	b.State[0][0].V = 111
	b.Cards[0] = 99
	b.Aux[0] = 13
	if a.State[0][0].V == 111 || a.Cards[0] == 99 || a.Aux[0] == 13 {
		t.Fatal("Clone shares state with original")
	}
	var nilSnap *Snapshot
	if nilSnap.Clone() != nil {
		t.Fatal("nil Clone != nil")
	}
}
