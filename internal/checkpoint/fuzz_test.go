package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the snapshot decoder. The decoder must
// never panic or over-allocate, and anything it accepts must re-encode to the
// exact same bytes (the format has a single canonical encoding).
func FuzzDecode(f *testing.F) {
	if enc, err := Encode(sampleSnapshot()); err == nil {
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
		flip := append([]byte(nil), enc...)
		flip[len(flip)/3] ^= 0x10
		f.Add(flip)
	}
	if enc, err := Encode(&Snapshot{Kind: "select"}); err == nil {
		f.Add(enc)
	}
	f.Add([]byte("MCBK"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if s != nil {
				t.Fatal("Decode returned snapshot alongside error")
			}
			return
		}
		re, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not canonical: %d bytes in, %d bytes out", len(data), len(re))
		}
	})
}
