// Package checkpoint is the phase-boundary snapshot plane of the recovery
// layer. The paper's algorithms are strictly phase-structured (Columnsort
// steps, selection filtering rounds), so the distributed state at a phase
// boundary is small, deterministic and host-collectable: per-processor
// element lists plus a handful of globally known scalars. A Snapshot captures
// that state; a Store persists encoded snapshots so a retry attempt — or a
// fresh host process — can resume from the last accepted phase boundary
// instead of replaying the run from cycle 0.
//
// Two stores are provided: MemStore (survives retry attempts within one
// process) and DirStore (survives host-process restarts; snapshots are
// written atomically and corrupted or truncated files are skipped on load,
// so a crash mid-write falls back to the previous boundary).
//
// Snapshots cross a trust boundary when read back from disk, so the codec is
// versioned and checksummed: Decode rejects truncated, bit-flipped or
// malformed input with a typed *DecodeError before any field is used.
package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Elem is one distributed element in a snapshot: the paper's lexicographic
// triple (value, tiebreak, payload) plus a dummy flag for the padding cells
// of a mid-Columnsort matrix (dummies carry no element but their positions
// are part of the state).
type Elem struct {
	V, T, P int64
	Dummy   bool
}

// Snapshot is one phase-boundary capture of a distributed sort or selection.
// State[i] is the list held by (or attributed to) processor i at the
// boundary; the scalar fields carry the globally known loop state. The
// snapshot is self-describing enough to validate a resume: Kind, Algo, P, K
// and Cards must match the run being resumed, and the element multiset is
// re-verified against the inputs before the state is trusted.
type Snapshot struct {
	// Kind is the computation kind: "sort" or "select".
	Kind string
	// Algo is the algorithm name (Algorithm.String / SelectAlgorithm.String).
	Algo string
	// P and K are the network shape of the run that produced the snapshot.
	P, K int
	// Phase is the index of the next segment to run: state is the input of
	// segment Phase. Phase 0 with fresh state is the run's input.
	Phase int
	// PhaseName labels the completed boundary for reports ("" at phase 0).
	PhaseName string
	// Attempt and Resumes carry the retry bookkeeping at capture time.
	Attempt int
	Resumes int
	// CyclesDone / MessagesDone are the accepted engine costs up to this
	// boundary; ReplayedCycles counts the cycles discarded by failed
	// attempts so far.
	CyclesDone     int64
	MessagesDone   int64
	ReplayedCycles int64
	// Order is the sort order (0 descending, 1 ascending); state is stored
	// in the internal (negated-if-ascending) element space.
	Order int
	// D, M, Threshold and Iter are the selection loop state: remaining rank,
	// candidate count, termination threshold and completed iterations.
	D, M, Threshold, Iter int
	// Aux carries kind-specific extras (e.g. a finished selection's answer).
	Aux []int64
	// Cards are the original per-processor cardinalities (the sort's
	// redistribution targets and the resume-validation anchor).
	Cards []int
	// State is the per-processor element state at the boundary.
	State [][]Elem
}

// Clone returns a deep copy.
func (s *Snapshot) Clone() *Snapshot {
	if s == nil {
		return nil
	}
	c := *s
	c.Aux = append([]int64(nil), s.Aux...)
	c.Cards = append([]int(nil), s.Cards...)
	c.State = make([][]Elem, len(s.State))
	for i, l := range s.State {
		c.State[i] = append([]Elem(nil), l...)
	}
	return &c
}

// Store is the checkpoint sink the recovery layer threads through
// SortOptions / SelectOptions: Save accepts a verified phase-boundary
// snapshot, Latest returns the most recently saved one (nil when empty), and
// Clear discards everything (a fresh, non-resuming run clears stale state
// first). Implementations must round-trip through the codec so a loaded
// snapshot is always an isolated, checksum-verified copy.
type Store interface {
	Save(*Snapshot) error
	Latest() (*Snapshot, error)
	Clear() error
}

// MemStore keeps encoded snapshots in memory: recovery survives retry
// attempts within one process but not a process restart. Every Save encodes
// and every Latest decodes, so the codec is exercised on the in-memory path
// too and callers never share mutable state with the store. The full save
// history is retained (snapshots are phase-boundary sized, not run sized)
// for determinism audits via History.
type MemStore struct {
	mu   sync.Mutex
	encs [][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{} }

// Save encodes and retains the snapshot.
func (m *MemStore) Save(s *Snapshot) error {
	enc, err := Encode(s)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.encs = append(m.encs, enc)
	m.mu.Unlock()
	return nil
}

// Latest decodes and returns the most recently saved snapshot, or nil.
func (m *MemStore) Latest() (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.encs) == 0 {
		return nil, nil
	}
	return Decode(m.encs[len(m.encs)-1])
}

// Clear discards all saved snapshots.
func (m *MemStore) Clear() error {
	m.mu.Lock()
	m.encs = nil
	m.mu.Unlock()
	return nil
}

// History returns the encoded bytes of every Save in order (copies).
func (m *MemStore) History() [][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]byte, len(m.encs))
	for i, e := range m.encs {
		out[i] = append([]byte(nil), e...)
	}
	return out
}

// DirStore persists snapshots as files under Dir, one file per Save, named
// <kind>-<seq>.ckpt with a monotonically increasing sequence number — so
// recovery survives a host-process restart. Writes go through a temporary
// file and an atomic rename; Latest walks the sequence backwards and skips
// entries that fail to decode, so a kill mid-write falls back to the
// previous accepted boundary instead of wedging the resume.
type DirStore struct {
	Dir string

	mu  sync.Mutex
	seq int // next sequence number; 0 = scan the directory first
}

// NewDir returns a store rooted at dir, creating it if needed.
func NewDir(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	return &DirStore{Dir: dir}, nil
}

const ckptExt = ".ckpt"

// entries returns the snapshot files in the directory, ordered by sequence.
func (d *DirStore) entries() ([]string, []int, error) {
	ents, err := os.ReadDir(d.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: read dir: %w", err)
	}
	var names []string
	var seqs []int
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ckptExt) {
			continue
		}
		base := strings.TrimSuffix(name, ckptExt)
		i := strings.LastIndexByte(base, '-')
		if i < 0 {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(base[i+1:], "%d", &seq); err != nil {
			continue
		}
		names = append(names, name)
		seqs = append(seqs, seq)
	}
	sort.Sort(&bySeq{names, seqs})
	return names, seqs, nil
}

type bySeq struct {
	names []string
	seqs  []int
}

func (b *bySeq) Len() int           { return len(b.names) }
func (b *bySeq) Less(i, j int) bool { return b.seqs[i] < b.seqs[j] }
func (b *bySeq) Swap(i, j int) {
	b.names[i], b.names[j] = b.names[j], b.names[i]
	b.seqs[i], b.seqs[j] = b.seqs[j], b.seqs[i]
}

// Save encodes the snapshot and writes it atomically (temp file + rename).
func (d *DirStore) Save(s *Snapshot) error {
	enc, err := Encode(s)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seq == 0 {
		_, seqs, err := d.entries()
		if err != nil {
			return err
		}
		d.seq = 1
		if len(seqs) > 0 {
			d.seq = seqs[len(seqs)-1] + 1
		}
	}
	name := fmt.Sprintf("%s-%06d%s", s.Kind, d.seq, ckptExt)
	tmp := filepath.Join(d.Dir, name+".tmp")
	if err := os.WriteFile(tmp, enc, 0o644); err != nil {
		return fmt.Errorf("checkpoint: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.Dir, name)); err != nil {
		return fmt.Errorf("checkpoint: commit snapshot: %w", err)
	}
	d.seq++
	return nil
}

// Latest returns the newest snapshot that decodes cleanly, or nil when the
// directory holds none. Corrupted or truncated files are skipped (a crash
// mid-write must not block recovery on the previous boundary).
func (d *DirStore) Latest() (*Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	names, _, err := d.entries()
	if err != nil {
		return nil, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		enc, err := os.ReadFile(filepath.Join(d.Dir, names[i]))
		if err != nil {
			continue
		}
		snap, err := Decode(enc)
		if err != nil {
			continue // corrupt or truncated: fall back to the previous one
		}
		return snap, nil
	}
	return nil, nil
}

// Clear removes every snapshot file (and stray temp files) in the directory.
func (d *DirStore) Clear() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	ents, err := os.ReadDir(d.Dir)
	if err != nil {
		return fmt.Errorf("checkpoint: read dir: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !(strings.HasSuffix(name, ckptExt) || strings.HasSuffix(name, ckptExt+".tmp")) {
			continue
		}
		if err := os.Remove(filepath.Join(d.Dir, name)); err != nil {
			return fmt.Errorf("checkpoint: clear: %w", err)
		}
	}
	d.seq = 1
	return nil
}
