package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// The snapshot codec: a fixed little-endian binary layout, versioned and
// guarded by a trailing FNV-1a checksum over everything before it. The
// format is deliberately boring — no maps, no reflection — so that encoding
// a given Snapshot is byte-deterministic (the determinism tests compare
// encodings across GOMAXPROCS settings) and decoding untrusted bytes is
// strictly bounds-checked.
//
// Layout (all integers little-endian):
//
//	magic   "MCBK"                          4 bytes
//	version uint16                          currently 1
//	strings Kind, Algo, PhaseName           uint16 length + bytes each
//	scalars P K Phase Attempt Resumes       int64 each
//	        Order D M Threshold Iter
//	        CyclesDone MessagesDone
//	        ReplayedCycles
//	aux     uint32 count + int64 each
//	cards   uint32 count + int64 each
//	state   uint32 proc count, then per processor:
//	          uint32 elem count + (int64 V, int64 T, int64 P, uint8 flags)
//	checksum uint64 FNV-1a over all preceding bytes

const (
	codecMagic   = "MCBK"
	codecVersion = 1

	maxStringLen = 1 << 12
	elemSize     = 25 // 3×int64 + 1 flag byte
)

// ErrInvalid is the sentinel every decode failure matches via errors.Is: the
// bytes are not an acceptable snapshot (truncated, checksum mismatch, bad
// magic or version, or malformed structure).
var ErrInvalid = errors.New("checkpoint: invalid snapshot")

// DecodeError is the typed decode failure; it wraps ErrInvalid.
type DecodeError struct{ Reason string }

func (e *DecodeError) Error() string { return "checkpoint: invalid snapshot: " + e.Reason }
func (e *DecodeError) Unwrap() error { return ErrInvalid }

func decodeErrf(format string, args ...any) error {
	return &DecodeError{Reason: fmt.Sprintf(format, args...)}
}

// fnv1a is the checksum guarding encoded snapshots (the same construction
// the fault plane uses for message checksums).
func fnv1a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// Encode renders the snapshot in the versioned binary format. It fails only
// on unrepresentable snapshots (oversized strings or counts).
func Encode(s *Snapshot) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("checkpoint: nil snapshot")
	}
	for _, str := range []string{s.Kind, s.Algo, s.PhaseName} {
		if len(str) > maxStringLen {
			return nil, fmt.Errorf("checkpoint: string field too long (%d bytes)", len(str))
		}
	}
	if len(s.State) > math.MaxUint32 || len(s.Cards) > math.MaxUint32 || len(s.Aux) > math.MaxUint32 {
		return nil, fmt.Errorf("checkpoint: snapshot too large")
	}
	n := 4 + 2 + 3*2 + len(s.Kind) + len(s.Algo) + len(s.PhaseName) + 13*8 + 4 + 8*len(s.Aux) + 4 + 8*len(s.Cards) + 4
	for _, l := range s.State {
		n += 4 + elemSize*len(l)
	}
	n += 8 // checksum
	buf := make([]byte, 0, n)

	buf = append(buf, codecMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, codecVersion)
	appendString := func(str string) {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(str)))
		buf = append(buf, str...)
	}
	appendString(s.Kind)
	appendString(s.Algo)
	appendString(s.PhaseName)
	for _, v := range []int64{
		int64(s.P), int64(s.K), int64(s.Phase), int64(s.Attempt), int64(s.Resumes),
		int64(s.Order), int64(s.D), int64(s.M), int64(s.Threshold), int64(s.Iter),
		s.CyclesDone, s.MessagesDone, s.ReplayedCycles,
	} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Aux)))
	for _, v := range s.Aux {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Cards)))
	for _, v := range s.Cards {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.State)))
	for _, l := range s.State {
		if len(l) > math.MaxUint32 {
			return nil, fmt.Errorf("checkpoint: snapshot too large")
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l)))
		for _, e := range l {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(e.V))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(e.T))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(e.P))
			var flags byte
			if e.Dummy {
				flags = 1
			}
			buf = append(buf, flags)
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, fnv1a(buf))
	return buf, nil
}

// decoder is a bounds-checked cursor over untrusted bytes.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, decodeErrf("truncated at offset %d (want %d more bytes, have %d)", d.off, n, d.remaining())
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, nil
}

func (d *decoder) u16() (uint16, error) {
	b, err := d.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) i64() (int64, error) {
	b, err := d.bytes(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxStringLen {
		return "", decodeErrf("string field of %d bytes exceeds limit", n)
	}
	b, err := d.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// count reads a uint32 element count and validates it against the bytes
// actually remaining (each element occupying at least minSize bytes), so a
// malicious length prefix cannot force a huge allocation.
func (d *decoder) count(minSize int) (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if minSize > 0 && int64(n)*int64(minSize) > int64(d.remaining()) {
		return 0, decodeErrf("count %d exceeds remaining payload", n)
	}
	return int(n), nil
}

// Decode parses and validates an encoded snapshot. The checksum is verified
// before any field is interpreted; any failure — truncation, bit flip, bad
// magic or version, malformed structure, trailing garbage — returns a
// *DecodeError (matching errors.Is(err, ErrInvalid)).
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < 4+2+8 {
		return nil, decodeErrf("too short (%d bytes)", len(b))
	}
	body, sum := b[:len(b)-8], binary.LittleEndian.Uint64(b[len(b)-8:])
	if fnv1a(body) != sum {
		return nil, decodeErrf("checksum mismatch")
	}
	d := &decoder{b: body}
	magic, err := d.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != codecMagic {
		return nil, decodeErrf("bad magic %q", magic)
	}
	version, err := d.u16()
	if err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, decodeErrf("unsupported version %d (want %d)", version, codecVersion)
	}
	s := &Snapshot{}
	if s.Kind, err = d.str(); err != nil {
		return nil, err
	}
	if s.Algo, err = d.str(); err != nil {
		return nil, err
	}
	if s.PhaseName, err = d.str(); err != nil {
		return nil, err
	}
	ints := [13]int64{}
	for i := range ints {
		if ints[i], err = d.i64(); err != nil {
			return nil, err
		}
	}
	s.P, s.K, s.Phase, s.Attempt, s.Resumes = int(ints[0]), int(ints[1]), int(ints[2]), int(ints[3]), int(ints[4])
	s.Order, s.D, s.M, s.Threshold, s.Iter = int(ints[5]), int(ints[6]), int(ints[7]), int(ints[8]), int(ints[9])
	s.CyclesDone, s.MessagesDone, s.ReplayedCycles = ints[10], ints[11], ints[12]
	if s.P < 0 || s.K < 0 || s.Phase < 0 {
		return nil, decodeErrf("negative shape fields (p=%d k=%d phase=%d)", s.P, s.K, s.Phase)
	}
	nAux, err := d.count(8)
	if err != nil {
		return nil, err
	}
	if nAux > 0 {
		s.Aux = make([]int64, nAux)
		for i := range s.Aux {
			if s.Aux[i], err = d.i64(); err != nil {
				return nil, err
			}
		}
	}
	nCards, err := d.count(8)
	if err != nil {
		return nil, err
	}
	if nCards > 0 {
		s.Cards = make([]int, nCards)
		for i := range s.Cards {
			v, err := d.i64()
			if err != nil {
				return nil, err
			}
			if v < 0 || v > math.MaxInt32 {
				return nil, decodeErrf("cardinality %d out of range", v)
			}
			s.Cards[i] = int(v)
		}
	}
	nProcs, err := d.count(4)
	if err != nil {
		return nil, err
	}
	if nProcs > 0 {
		s.State = make([][]Elem, nProcs)
		for i := range s.State {
			nElems, err := d.count(elemSize)
			if err != nil {
				return nil, err
			}
			if nElems == 0 {
				continue
			}
			l := make([]Elem, nElems)
			for j := range l {
				if l[j].V, err = d.i64(); err != nil {
					return nil, err
				}
				if l[j].T, err = d.i64(); err != nil {
					return nil, err
				}
				if l[j].P, err = d.i64(); err != nil {
					return nil, err
				}
				fb, err := d.bytes(1)
				if err != nil {
					return nil, err
				}
				if fb[0] > 1 {
					return nil, decodeErrf("unknown element flags %#x", fb[0])
				}
				l[j].Dummy = fb[0] == 1
			}
			s.State[i] = l
		}
	}
	if d.remaining() != 0 {
		return nil, decodeErrf("%d trailing bytes", d.remaining())
	}
	return s, nil
}
