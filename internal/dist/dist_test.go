package dist

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		v := r.Intn(7)
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(7): value %d appeared %d/7000 times", v, c)
		}
	}
}

func checkProfile(t *testing.T, c Cardinalities, n, p int, label string) {
	t.Helper()
	if len(c) != p {
		t.Fatalf("%s: %d processors, want %d", label, len(c), p)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if c.N() != n {
		t.Fatalf("%s: N() = %d, want %d", label, c.N(), n)
	}
}

func TestProfiles(t *testing.T) {
	r := NewRNG(3)
	checkProfile(t, Even(100, 10), 100, 10, "even")
	checkProfile(t, NearlyEven(103, 10), 103, 10, "nearly-even")
	checkProfile(t, OneHeavy(100, 10, 0.5), 100, 10, "one-heavy")
	checkProfile(t, RandomComposition(r, 57, 9), 57, 9, "random")
	checkProfile(t, Geometric(100, 5), 100, 5, "geometric")

	oh := OneHeavy(100, 10, 0.5)
	if oh.Max() < 45 {
		t.Errorf("OneHeavy max = %d, want ~50", oh.Max())
	}
	g := Geometric(100, 5)
	if g[0] < g[1] || g[1] < g[2] {
		t.Errorf("Geometric not decreasing: %v", g)
	}
}

func TestMaxAndMax2(t *testing.T) {
	c := Cardinalities{3, 9, 9, 1}
	if c.Max() != 9 || c.Max2() != 9 {
		t.Fatalf("Max=%d Max2=%d", c.Max(), c.Max2())
	}
	c = Cardinalities{3, 9, 5, 1}
	if c.Max() != 9 || c.Max2() != 5 {
		t.Fatalf("Max=%d Max2=%d", c.Max(), c.Max2())
	}
}

func TestValuesDistinctAndComplete(t *testing.T) {
	r := NewRNG(4)
	c := RandomComposition(r, 200, 7)
	vals := Values(r, c)
	flat := Flatten(vals)
	if len(flat) != 200 {
		t.Fatalf("got %d values", len(flat))
	}
	seen := map[int64]bool{}
	for _, v := range flat {
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	for i, part := range vals {
		if len(part) != c[i] {
			t.Fatalf("processor %d has %d values, want %d", i, len(part), c[i])
		}
	}
}

func TestValuesWithDuplicatesHasDuplicates(t *testing.T) {
	r := NewRNG(5)
	vals := ValuesWithDuplicates(r, Even(400, 4))
	seen := map[int64]int{}
	for _, v := range Flatten(vals) {
		seen[v]++
	}
	if len(seen) >= 400 {
		t.Fatal("expected duplicated values")
	}
}

func TestAdversarialCircular(t *testing.T) {
	c := Cardinalities{3, 2, 2}
	vals := AdversarialCircular(c)
	// n=7, descending deal: ranks 1..7 -> values 7..1 dealt P0,P1,P2,P0,P1,P2,P0.
	want := [][]int64{{7, 4, 1}, {6, 3}, {5, 2}}
	for i := range want {
		for j := range want[i] {
			if vals[i][j] != want[i][j] {
				t.Fatalf("vals = %v, want %v", vals, want)
			}
		}
	}
}

func TestAdversarialCircularProperty(t *testing.T) {
	// Consecutive sorted elements (within the first n-(nmax-nmax2) ranks)
	// never share a processor.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := 2 + r.Intn(6)
		n := p + r.Intn(50)
		c := RandomComposition(r, n, p)
		vals := AdversarialCircular(c)
		where := map[int64]int{}
		for i, part := range vals {
			for _, v := range part {
				where[v] = i
			}
		}
		limit := n - (c.Max() - c.Max2())
		for rank := 1; rank < limit; rank++ {
			a := where[int64(n-rank+1)]
			b := where[int64(n-rank)]
			if a == b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(6)
	s := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]int64(nil), s...)
	Shuffle(r, s)
	sum := int64(0)
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatal("shuffle lost elements")
	}
	_ = orig
}

func TestAdversarialAlternating(t *testing.T) {
	c := Cardinalities{4, 2, 2}
	vals := AdversarialAlternating(c, 0)
	// n=8: ranks alternate other/heavy for 2*min(nmax, ...)=8 placements:
	// heavy gets even 0-based ranks 1,3,5,7 -> values 7,5,3,1.
	want := []int64{7, 5, 3, 1}
	for i, w := range want {
		if vals[0][i] != w {
			t.Fatalf("heavy = %v, want %v", vals[0], want)
		}
	}
	// Cardinalities preserved and all values present.
	seen := map[int64]bool{}
	total := 0
	for i, part := range vals {
		if len(part) != c[i] {
			t.Fatalf("proc %d has %d values", i, len(part))
		}
		for _, v := range part {
			if v < 1 || v > 8 || seen[v] {
				t.Fatalf("bad value set %v", vals)
			}
			seen[v] = true
			total++
		}
	}
	if total != 8 {
		t.Fatalf("total %d", total)
	}
}

func TestAdversarialAlternatingProperty(t *testing.T) {
	// For the heavy processor, consecutive sorted pairs (2j, 2j+1) must
	// split between heavy and non-heavy for the first 2*nmax ranks (while
	// others still have capacity).
	r := NewRNG(77)
	for trial := 0; trial < 50; trial++ {
		p := 2 + r.Intn(6)
		n := 2*p + r.Intn(60)
		c := RandomComposition(r, n, p)
		heavy := r.Intn(p)
		vals := AdversarialAlternating(c, heavy)
		where := map[int64]int{}
		for i, part := range vals {
			if len(part) != c[i] {
				t.Fatalf("cardinality broken")
			}
			for _, v := range part {
				where[v] = i
			}
		}
		pairs := min(c[heavy], n-c[heavy])
		for j := 0; j < pairs; j++ {
			hi := where[int64(n-2*j)]   // odd rank value
			lo := where[int64(n-2*j-1)] // even rank value
			if lo != heavy || hi == heavy {
				t.Fatalf("pair %d not split: hi@%d lo@%d heavy=%d", j, hi, lo, heavy)
			}
		}
	}
}
