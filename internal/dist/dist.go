// Package dist generates the distributed inputs used by tests, examples and
// the experiment harness: cardinality profiles (how many elements each
// processor holds) and value profiles (what the elements are), driven by a
// small deterministic RNG so every experiment is reproducible.
package dist

// RNG is a splitmix64 pseudo-random generator: tiny, fast, deterministic
// across platforms, and good enough for workload generation.
type RNG struct {
	state uint64
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Next() >> 1) }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes s in place.
func Shuffle[T any](r *RNG, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
