package dist

import "fmt"

// Cardinalities is a per-processor element-count profile: Cardinalities[i]
// is n_i > 0, summing to n.
type Cardinalities []int

// N returns the total number of elements.
func (c Cardinalities) N() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// Max returns n_max, the largest cardinality.
func (c Cardinalities) Max() int {
	m := 0
	for _, v := range c {
		if v > m {
			m = v
		}
	}
	return m
}

// Max2 returns n_max2, the second largest cardinality (equal to Max when the
// maximum is attained twice). For a single processor it returns 0.
func (c Cardinalities) Max2() int {
	m1, m2 := 0, 0
	for _, v := range c {
		if v > m1 {
			m1, m2 = v, m1
		} else if v > m2 {
			m2 = v
		}
	}
	return m2
}

// Validate checks n_i > 0 for all i.
func (c Cardinalities) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("dist: empty cardinality profile")
	}
	for i, v := range c {
		if v < 1 {
			return fmt.Errorf("dist: processor %d has cardinality %d (paper assumes n_i > 0)", i, v)
		}
	}
	return nil
}

// Even returns the even profile: n/p elements per processor. n must be a
// multiple of p.
func Even(n, p int) Cardinalities {
	if n%p != 0 {
		panic("dist: Even requires p | n")
	}
	c := make(Cardinalities, p)
	for i := range c {
		c[i] = n / p
	}
	return c
}

// NearlyEven spreads n over p processors as evenly as possible (first n%p
// processors get one extra). Requires n >= p.
func NearlyEven(n, p int) Cardinalities {
	if n < p {
		panic("dist: n < p")
	}
	c := make(Cardinalities, p)
	for i := range c {
		c[i] = n / p
		if i < n%p {
			c[i]++
		}
	}
	return c
}

// OneHeavy gives a single processor `frac` (0 < frac < 1) of the elements
// and spreads the rest nearly evenly; used to drive n_max toward the cycle
// lower bound of Theorem 4. Requires enough elements for everyone to get at
// least one.
func OneHeavy(n, p int, frac float64) Cardinalities {
	heavy := int(float64(n) * frac)
	if heavy < 1 {
		heavy = 1
	}
	if heavy > n-(p-1) {
		heavy = n - (p - 1)
	}
	rest := n - heavy
	c := make(Cardinalities, p)
	c[0] = heavy
	for i := 1; i < p; i++ {
		c[i] = rest / (p - 1)
		if i-1 < rest%(p-1) {
			c[i]++
		}
	}
	return c
}

// RandomComposition draws a random composition of n into p positive parts.
func RandomComposition(r *RNG, n, p int) Cardinalities {
	if n < p {
		panic("dist: n < p")
	}
	// Stars and bars: choose p-1 distinct cut points in [1, n-1].
	cuts := map[int]bool{}
	for len(cuts) < p-1 {
		cuts[1+r.Intn(n-1)] = true
	}
	points := make([]int, 0, p+1)
	points = append(points, 0)
	for c := range cuts {
		points = append(points, c)
	}
	points = append(points, n)
	// Insertion sort the small cut list.
	for i := 1; i < len(points); i++ {
		v := points[i]
		j := i - 1
		for j >= 0 && points[j] > v {
			points[j+1] = points[j]
			j--
		}
		points[j+1] = v
	}
	c := make(Cardinalities, p)
	for i := 0; i < p; i++ {
		c[i] = points[i+1] - points[i]
	}
	return c
}

// Geometric gives processor i roughly n/2^(i+1) elements (heavily skewed),
// with a floor of one element each.
func Geometric(n, p int) Cardinalities {
	c := make(Cardinalities, p)
	remaining := n - p // reserve 1 per processor
	for i := range c {
		c[i] = 1
		take := remaining / 2
		if i == p-1 {
			take = remaining
		}
		c[i] += take
		remaining -= take
	}
	return c
}

// Values generates element values for a cardinality profile, returning one
// slice per processor. All elements are distinct (the paper's w.l.o.g.
// assumption), drawn as a random permutation of [0, n) mapped through an
// affine spread to exercise larger magnitudes.
func Values(r *RNG, c Cardinalities) [][]int64 {
	n := c.N()
	perm := r.Perm(n)
	out := make([][]int64, len(c))
	idx := 0
	for i, ni := range c {
		out[i] = make([]int64, ni)
		for j := 0; j < ni; j++ {
			out[i][j] = int64(perm[idx])*3 + 1
			idx++
		}
	}
	return out
}

// ValuesWithDuplicates generates values with heavy duplication (values drawn
// from a domain of size max(n/4, 2)), exercising the tie-breaking paths.
func ValuesWithDuplicates(r *RNG, c Cardinalities) [][]int64 {
	n := c.N()
	domain := n / 4
	if domain < 2 {
		domain = 2
	}
	out := make([][]int64, len(c))
	for i, ni := range c {
		out[i] = make([]int64, ni)
		for j := 0; j < ni; j++ {
			out[i][j] = int64(r.Intn(domain))
		}
	}
	return out
}

// AdversarialCircular builds the Theorem 3 lower-bound distribution: the
// sorted order is dealt circularly over the processors (one element at a
// time to each processor that still has capacity), so no two neighbors in
// the sorted prefix share a processor. Values are descending from n (the
// paper's rank-1-is-largest order).
func AdversarialCircular(c Cardinalities) [][]int64 {
	n := c.N()
	out := make([][]int64, len(c))
	fill := make([]int, len(c))
	for i, ni := range c {
		out[i] = make([]int64, ni)
		_ = ni
	}
	rank := 0
	for rank < n {
		for i := range c {
			if fill[i] < c[i] && rank < n {
				out[i][fill[i]] = int64(n - rank) // descending values
				fill[i]++
				rank++
			}
		}
	}
	return out
}

// Flatten concatenates per-processor slices into one slice (copying).
func Flatten(parts [][]int64) []int64 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int64, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// AdversarialAlternating builds the Theorem 4 lower-bound distribution for
// n_max <= n/2: one heavy processor P_max holds every even-ranked element of
// the sorted prefix N[1, 2*n_max] while the odd ranks go to the others, so
// P_max must touch a message in at least n_max cycles. heavy selects the
// index of P_max; the remaining elements are dealt circularly.
func AdversarialAlternating(c Cardinalities, heavy int) [][]int64 {
	n := c.N()
	nmax := c[heavy]
	out := make([][]int64, len(c))
	fill := make([]int, len(c))
	for i, ni := range c {
		out[i] = make([]int64, ni)
	}
	place := func(proc int, val int64) {
		out[proc][fill[proc]] = val
		fill[proc]++
	}
	rank := 0 // 0-based descending rank; value n-rank
	other := 0
	// Pairing stops when either side runs out of capacity (if n_max > n/2,
	// only n - n_max pairs exist — exactly Theorem 4's min{n_max, n-n_max}).
	pairs := min(nmax, n-nmax)
	for j := 0; j < pairs; j++ {
		// Odd rank (2j) to some other processor, even rank (2j+1) to heavy.
		for other == heavy || fill[other] >= c[other] {
			other = (other + 1) % len(c)
		}
		place(other, int64(n-rank))
		rank++
		place(heavy, int64(n-rank))
		rank++
	}
	// Deal the remainder circularly over whatever capacity is left.
	for rank < n {
		for i := range c {
			if fill[i] < c[i] && rank < n {
				place(i, int64(n-rank))
				rank++
			}
		}
	}
	return out
}
