// Faulttolerant: run a distributed sort on an unreliable network — message
// drops, checksum-guarded corruption, a channel outage and a processor
// crash-stop — and let the verify-and-retry layer recover a correct answer.
//
// Fault injection is deterministic: every decision is a pure function of the
// fault plan's seed and the (cycle, processor, channel) coordinates, so every
// failure shown here replays identically from the same plan.
//
//	go run ./examples/faulttolerant
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"mcbnet"
)

func main() {
	// Eight processors, eight values each, on four broadcast channels.
	inputs := make([][]int64, 8)
	for i := range inputs {
		for j := 0; j < 8; j++ {
			inputs[i] = append(inputs[i], int64((i*37+j*11)%64))
		}
	}

	// An unreliable network: 0.2% of deliveries dropped, 0.2% corrupted
	// (detected by the per-message checksum and read as silence), all seeded.
	// Seed 6 is a deliberately unlucky one: the first attempts fault.
	plan := &mcbnet.FaultPlan{
		Seed:        6,
		DropRate:    0.002,
		CorruptRate: 0.002,
		Checksum:    true,
	}

	// A single unverified run on this network fails with a typed error.
	_, _, err := mcbnet.Sort(inputs, mcbnet.SortOptions{K: 4, Faults: plan})
	fmt.Printf("single attempt on the faulty network: %v\n", err)

	// The retry layer re-executes faulted runs — each attempt reseeds the
	// stochastic faults — and verifies every accepted output (sortedness,
	// cardinality preservation, multiset-permutation of the input).
	outputs, rep, err := mcbnet.SortWithRetry(inputs, mcbnet.SortOptions{
		K:      4,
		Faults: plan,
		Retry:  mcbnet.RetryPolicy{MaxAttempts: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered after %d attempt(s): P1 now holds %v\n", rep.Attempts, outputs[0])

	// Crash-stops are typed too: schedule a processor death and watch the
	// error taxonomy name it. A cycle recorder captures the whole doomed run
	// — every broadcast, silence, fault and the crash itself — into
	// preallocated ring buffers (recording never allocates).
	crashed := plan.Clone()
	crashed.Crashes = []mcbnet.FaultCrash{{Proc: 3, Cycle: 10}}
	rec := mcbnet.NewTraceRecorder(len(inputs), 4, 1<<14)
	_, _, err = mcbnet.Sort(inputs, mcbnet.SortOptions{K: 4, Faults: crashed, Recorder: rec})
	var ce *mcbnet.CrashError
	if errors.As(err, &ce) {
		fmt.Printf("scripted crash surfaces as: %v\n", ce)
	}

	// Export the captured run as Chrome trace-event JSON: open the file in
	// https://ui.perfetto.dev to see one track per channel, one per
	// processor, the algorithm's phases as spans — and processor 3's track
	// going quiet at cycle 10.
	f, err := os.Create("faulttolerant.perfetto.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.WritePerfetto(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote faulttolerant.perfetto.json (%d events) — open it in https://ui.perfetto.dev\n", rec.Total())

	// Selection can degrade gracefully instead: give the dead processor's
	// elements up and answer the rank over the survivors.
	deathOnly := &mcbnet.FaultPlan{Crashes: []mcbnet.FaultCrash{{Proc: 3, Cycle: 10}}}
	val, selRep, err := mcbnet.SelectWithRetry(inputs, mcbnet.SelectOptions{
		K:      4,
		D:      10,
		Faults: deathOnly,
		Retry:  mcbnet.RetryPolicy{MaxAttempts: 3, DegradeOnCrash: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded selection: rank 10 over the survivors = %d (gave up on processors %v, %d attempts)\n",
		val, selRep.DeadProcs, selRep.Attempts)
}
