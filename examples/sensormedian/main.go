// Sensormedian: compute robust aggregate statistics (median and other
// percentiles) of sensor readings spread over a broadcast network, using the
// Section 8 selection algorithm — a few thousand messages instead of moving
// all readings.
//
// 64 sensor nodes share 8 broadcast channels; each node buffered a different
// number of temperature readings (in milli-degrees). The median is found by
// repeated median-of-medians filtering; we then reuse the same machinery for
// the 5th/95th percentiles.
//
//	go run ./examples/sensormedian
package main

import (
	"fmt"
	"log"

	"mcbnet"
	"mcbnet/internal/dist"
)

func main() {
	const nodes, channels = 64, 8
	r := dist.NewRNG(7)
	card := dist.RandomComposition(r, 120000, nodes)

	// Readings: a diurnal-ish baseline plus noise, with a handful of
	// outliers (stuck sensors) that would wreck a mean.
	inputs := make([][]int64, nodes)
	total := 0
	for i, ni := range card {
		inputs[i] = make([]int64, ni)
		base := int64(21000 + r.Intn(4000)) // per-node bias
		for j := range inputs[i] {
			v := base + int64(r.Intn(2001)) - 1000
			if r.Intn(500) == 0 {
				v = 85000 // stuck-high outlier
			}
			inputs[i][j] = v
		}
		total += ni
	}
	fmt.Printf("%d readings across %d nodes (min %d, max %d per node)\n",
		total, nodes, minCard(card), card.Max())

	// Descending ranks for the 5th, 50th and 95th percentiles, fetched in a
	// single network computation.
	qs := []float64{0.05, 0.50, 0.95}
	ds := make([]int, len(qs))
	for i, q := range qs {
		ds[i] = int(float64(total)*(1-q)) + 1
	}
	vals, rep, err := mcbnet.MultiSelect(inputs, ds, mcbnet.SelectOptions{K: channels})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npercentiles via one distributed multi-selection:")
	for i, q := range qs {
		fmt.Printf("  p%-4.0f = %6d m°C (descending rank %d)\n", q*100, vals[i], ds[i])
	}
	fmt.Printf("total: %d msgs, %d cycles, %d filter phases for all three\n",
		rep.Stats.Messages, rep.Stats.Cycles, rep.FilterPhases)
	p5, med, p95 := vals[0], vals[1], vals[2]
	if !(p5 <= med && med <= p95) {
		log.Fatal("percentiles out of order")
	}

	fmt.Printf("\nmoving every reading would cost >= %d messages; "+
		"three selections cost a small multiple of p*log(kn/p) each.\n", total)
}

func minCard(c dist.Cardinalities) int {
	m := c[0]
	for _, v := range c {
		if v < m {
			m = v
		}
	}
	return m
}
