// Logmerge: globally order timestamped log records that arrived unevenly at
// a cluster of collectors sharing broadcast channels — the classic uneven
// distribution the Section 7 sorting algorithm was built for.
//
// Each of 12 collectors holds a burst of log records (some collectors saw
// 50x the traffic of others). After the distributed sort, collector 1 holds
// the newest records and collector 12 the oldest, each keeping its original
// record count, so the cluster can stream a globally ordered log without any
// node ever holding more than its own share plus O(n/k) staging at the
// column representatives.
//
//	go run ./examples/logmerge
package main

import (
	"fmt"
	"log"

	"mcbnet"
	"mcbnet/internal/dist"
)

const (
	collectors = 12
	channels   = 4
)

func main() {
	// Synthesize a bursty workload: a base epoch plus jittered offsets;
	// collector 0 took a hot shard.
	r := dist.NewRNG(2026)
	card := dist.OneHeavy(6000, collectors, 0.45)
	const epoch = int64(1_700_000_000_000) // ms
	inputs := make([][]int64, collectors)
	for i, ni := range card {
		inputs[i] = make([]int64, ni)
		for j := range inputs[i] {
			inputs[i][j] = epoch + int64(r.Intn(10_000_000))
		}
	}
	fmt.Println("records per collector:", card)

	outputs, rep, err := mcbnet.Sort(inputs, mcbnet.SortOptions{
		K:     channels,
		Order: mcbnet.Ascending, // oldest first
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsorted %d records on MCB(p=%d, k=%d) using %s\n",
		card.N(), collectors, channels, rep.Algorithm)
	fmt.Printf("cycles: %d (max{n/k, n_max} = %d), messages: %d (n = %d)\n",
		rep.Stats.Cycles, max(card.N()/channels, card.Max()), rep.Stats.Messages, card.N())

	fmt.Println("\nglobal time ranges per collector (ms since epoch):")
	prevLast := int64(-1)
	for i, out := range outputs {
		first, last := out[0]-epoch, out[len(out)-1]-epoch
		fmt.Printf("  collector %-2d %6d records  [%8d .. %8d]\n", i+1, len(out), first, last)
		if out[0] < prevLast {
			log.Fatalf("ordering violated between collectors %d and %d", i, i+1)
		}
		prevLast = out[len(out)-1]
	}
	fmt.Println("\nglobal order verified: each collector's range follows the previous one")
}
