// Models: the same question ("what is the largest reading, and what is the
// median?") answered on three 1980s broadcast architectures — the paper's
// multi-channel MCB, the Dechter-Kleinrock single channel with collision
// feedback (IPBAM), and the Santoro-Sidney Shout-Echo network — showing how
// each model's primitive shapes the cost.
//
//	go run ./examples/models
package main

import (
	"fmt"
	"log"

	"mcbnet"
	"mcbnet/internal/dist"
	"mcbnet/internal/ipbam"
	"mcbnet/internal/shoutecho"
)

func main() {
	const p, k = 32, 4
	r := dist.NewRNG(5)
	card := dist.NearlyEven(8000, p)
	inputs := make([][]int64, p)
	n := 0
	for i, ni := range card {
		inputs[i] = make([]int64, ni)
		for j := range inputs[i] {
			inputs[i][j] = int64(r.Intn(1 << 16))
		}
		n += ni
	}
	fmt.Printf("%d readings across %d stations\n\n", n, p)

	// --- MCB(p, k): the paper's model. ---
	med, mrep, err := mcbnet.Select(inputs, mcbnet.SelectOptions{K: k, D: (n + 1) / 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCB(p=%d, k=%d)   median = %d   %6d cycles  %6d messages (filtering, Sec 8)\n",
		p, k, med, mrep.Stats.Cycles, mrep.Stats.Messages)

	// --- IPBAM: one channel, but collisions carry information. ---
	maxv, irep, err := ipbam.FindMax(inputs, ipbam.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IPBAM            max    = %d   %6d slots   %6d transmissions (collision bisection)\n",
		maxv, irep.Stats.Slots, irep.Stats.Transmissions)

	// --- Shout-Echo: every round gathers an answer from everyone. ---
	smed, srep, err := shoutecho.Select(inputs, (n+1)/2, shoutecho.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Shout-Echo       median = %d   %6d rounds  %6d messages (coordinator filtering, Sec 9)\n",
		smed, srep.Stats.Rounds, srep.Stats.Messages)

	if med != smed {
		log.Fatalf("models disagree on the median: %d vs %d", med, smed)
	}
	fmt.Println("\nboth medians agree; each model pays in its own currency:")
	fmt.Println("  MCB spends cycles bounded by (p/k)·log(kn/p); IPBAM finds extrema in ~log2(maxvalue)")
	fmt.Println("  slots; Shout-Echo burns p messages per round but needs only ~3·log(n) rounds.")
}
