// Quickstart: sort a small distributed set and select its median on a
// simulated multi-channel broadcast network.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mcbnet"
)

func main() {
	// Four processors, each holding a few values — think four nodes on a
	// shared-bus LAN with two broadcast channels.
	inputs := [][]int64{
		{42, 7, 19},
		{3, 88},
		{55, 21, 64, 10},
		{30},
	}

	// Sort: afterwards processor 1 holds the largest elements (the paper's
	// canonical descending order), each processor keeping its element count.
	outputs, rep, err := mcbnet.Sort(inputs, mcbnet.SortOptions{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sorted (descending, cardinality-preserving):")
	for i, out := range outputs {
		fmt.Printf("  P%d: %v\n", i+1, out)
	}
	fmt.Printf("cost: %d cycles, %d broadcast messages (algorithm: %s)\n\n",
		rep.Stats.Cycles, rep.Stats.Messages, rep.Algorithm)

	// Select the median (descending rank ceil(n/2)) without sorting.
	n := 0
	for _, in := range inputs {
		n += len(in)
	}
	median, selRep, err := mcbnet.Select(inputs, mcbnet.SelectOptions{K: 2, D: (n + 1) / 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median of all %d elements: %d\n", n, median)
	fmt.Printf("cost: %d cycles, %d messages, %d filtering phases\n",
		selRep.Stats.Cycles, selRep.Stats.Messages, selRep.FilterPhases)
}
