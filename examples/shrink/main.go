// Shrink: run an algorithm written for a big broadcast network on a much
// smaller one, unchanged — the Section 2 simulation theorem in action.
//
// An MCB(16, 8) sorting job (16 stations, 8 channels) is executed twice:
// natively, and hosted on an MCB(4, 2) — a quarter of the stations, a
// quarter of the channels — where every host station impersonates four
// virtual stations and every host channel time-slices four virtual channels.
// The outputs are identical; the cost inflates by the simulation overhead
// (⌈p'/p⌉²·⌈k'/k⌉ host cycles per virtual cycle plus termination-detection
// traffic; see EXPERIMENTS.md E10).
//
//	go run ./examples/shrink
package main

import (
	"fmt"
	"log"

	"mcbnet"
	"mcbnet/internal/core"
	"mcbnet/internal/dist"
	"mcbnet/internal/mcb"
)

const (
	bigP, bigK   = 16, 8
	hostP, hostK = 4, 2
)

func main() {
	r := dist.NewRNG(11)
	card := dist.NearlyEven(640, bigP)
	inputs := dist.Values(r, card)

	// Native run on the full-size network.
	native, nrep, err := mcbnet.Sort(inputs, mcbnet.SortOptions{K: bigK})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native MCB(%d,%d):    %6d cycles  %6d messages\n",
		bigP, bigK, nrep.Stats.Cycles, nrep.Stats.Messages)

	// The same job on the shrunken host.
	hosted := make([][]int64, bigP)
	hres, err := mcb.SimulateUniform(
		mcb.Config{P: hostP, K: hostK},
		bigP, bigK,
		func(v *mcb.VProc) {
			hosted[v.ID()] = core.SortNode(v, inputs[v.ID()], core.AlgoColumnsortGather)
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hosted on MCB(%d,%d):  %6d cycles  %6d messages  (q=%d virtual stations per host)\n",
		hostP, hostK, hres.Stats.Cycles, hres.Stats.Messages, bigP/hostP)

	for i := range native {
		for j := range native[i] {
			if native[i][j] != hosted[i][j] {
				log.Fatalf("outputs differ at station %d position %d", i, j)
			}
		}
	}
	fmt.Printf("\noutputs identical; simulation overhead %.1fx cycles, %.1fx messages\n",
		float64(hres.Stats.Cycles)/float64(nrep.Stats.Cycles),
		float64(hres.Stats.Messages)/float64(nrep.Stats.Messages))
}
