// Topk: extract the k largest items from a distributed set using selection
// as a threshold finder — the composition the paper's tight bounds make
// cheap: one Select (O(p log(kn/p)) messages) finds the k-th largest value,
// a local filter keeps everything above it, and a final small sort orders
// just those k survivors.
//
// Scenario: 32 ad servers each hold bid amounts from the last auction
// window; the exchange wants the global top 100 bids in order.
//
//	go run ./examples/topk
package main

import (
	"fmt"
	"log"

	"mcbnet"
	"mcbnet/internal/dist"
)

const (
	servers  = 32
	channels = 8
	topK     = 100
)

func main() {
	r := dist.NewRNG(99)
	card := dist.RandomComposition(r, 50000, servers)
	inputs := make([][]int64, servers)
	for i, ni := range card {
		inputs[i] = make([]int64, ni)
		for j := range inputs[i] {
			inputs[i][j] = int64(r.Intn(1_000_000)) // micro-dollar bids
		}
	}
	n := card.N()
	fmt.Printf("%d bids across %d servers; extracting top %d\n", n, servers, topK)

	// Step 1: the k-th largest bid is the admission threshold.
	threshold, selRep, err := mcbnet.Select(inputs, mcbnet.SelectOptions{K: channels, D: topK})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("threshold (rank %d): %d  — found with %d messages, %d cycles\n",
		topK, threshold, selRep.Stats.Messages, selRep.Stats.Cycles)

	// Step 2: local filter. Ties at the threshold are kept; we trim after
	// the final sort.
	finalists := make([][]int64, servers)
	kept := 0
	for i, in := range inputs {
		for _, v := range in {
			if v >= threshold {
				finalists[i] = append(finalists[i], v)
				kept++
			}
		}
		if len(finalists[i]) == 0 {
			// The sorter requires n_i > 0; pad with a sentinel below the
			// threshold that must land at the tail.
			finalists[i] = []int64{threshold - 1}
			kept++
		}
	}
	fmt.Printf("finalists after local filter: %d elements\n", kept)

	// Step 3: sort just the finalists (tiny n, so this is cheap).
	sorted, sortRep, err := mcbnet.Sort(finalists, mcbnet.SortOptions{K: channels})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finalist sort: %d messages, %d cycles (%s)\n",
		sortRep.Stats.Messages, sortRep.Stats.Cycles, sortRep.Algorithm)

	flat := dist.Flatten(sorted) // already descending
	top := flat[:topK]
	fmt.Printf("\ntop-5 bids: %v ... rank-%d bid: %d\n", top[:5], topK, top[topK-1])
	if top[topK-1] != threshold {
		log.Fatalf("rank-%d bid %d does not match selection threshold %d",
			topK, top[topK-1], threshold)
	}

	fmt.Printf("\ntotal traffic: %d messages vs >= %d to centralize all bids\n",
		selRep.Stats.Messages+sortRep.Stats.Messages, n)
}
