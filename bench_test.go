package mcbnet

// One benchmark per evaluation artifact (see DESIGN.md's per-experiment
// index). Each benchmark runs the paper's workload at a fixed size and
// reports the model's cost measures — cycles and broadcast messages — as
// custom metrics alongside wall time; `cmd/mcbbench` produces the full
// parameter-sweep tables for the same experiments.

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mcbnet/internal/adversary"
	"mcbnet/internal/core"
	"mcbnet/internal/crew"
	"mcbnet/internal/dist"
	"mcbnet/internal/ipbam"
	"mcbnet/internal/matrix"
	"mcbnet/internal/mcb"
	"mcbnet/internal/schedule"
	"mcbnet/internal/shoutecho"
)

func benchSort(b *testing.B, inputs [][]int64, k int, algo core.Algorithm) *core.Report {
	b.Helper()
	var rep *core.Report
	for i := 0; i < b.N; i++ {
		var err error
		_, rep, err = core.Sort(inputs, core.SortOptions{K: k, Algorithm: algo, StallTimeout: 5 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Stats.Cycles), "cycles")
	b.ReportMetric(float64(rep.Stats.Messages), "msgs")
	return rep
}

func benchSelect(b *testing.B, inputs [][]int64, k, d int, algo core.SelectAlgorithm) *core.SelectReport {
	b.Helper()
	var rep *core.SelectReport
	for i := 0; i < b.N; i++ {
		var err error
		_, rep, err = core.Select(inputs, core.SelectOptions{K: k, D: d, Algorithm: algo, StallTimeout: 5 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Stats.Cycles), "cycles")
	b.ReportMetric(float64(rep.Stats.Messages), "msgs")
	return rep
}

// BenchmarkSortEven is experiment E1 (Cor 5): even sort at Theta(n) messages
// and Theta(n/k) cycles.
func BenchmarkSortEven(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536} {
		b.Run(fmt.Sprintf("n=%d/p=16/k=8", n), func(b *testing.B) {
			inputs := dist.Values(dist.NewRNG(uint64(n)), dist.Even(n, 16))
			rep := benchSort(b, inputs, 8, core.AlgoColumnsortGather)
			b.ReportMetric(float64(rep.Stats.Cycles)/(float64(n)/8), "cycles/(n÷k)")
		})
	}
}

// BenchmarkSortUneven is experiment E2 (Cor 6): cycles track max{n/k, n_max}.
func BenchmarkSortUneven(b *testing.B) {
	n, p, k := 16384, 16, 8
	for _, frac := range []float64{0.1, 0.5, 0.85} {
		b.Run(fmt.Sprintf("nmax=%.0f%%", frac*100), func(b *testing.B) {
			card := dist.OneHeavy(n, p, frac)
			inputs := dist.Values(dist.NewRNG(uint64(frac*100)), card)
			rep := benchSort(b, inputs, k, core.AlgoColumnsortGather)
			pred := float64(max(n/k, card.Max()))
			b.ReportMetric(float64(rep.Stats.Cycles)/pred, "cycles/pred")
		})
	}
}

// BenchmarkSelect is experiment E3 (Cor 7): selection at Theta(p log(kn/p))
// messages.
func BenchmarkSelect(b *testing.B) {
	for _, n := range []int{4096, 65536} {
		b.Run(fmt.Sprintf("n=%d/p=16/k=4", n), func(b *testing.B) {
			inputs := dist.Values(dist.NewRNG(uint64(n)), dist.Even(n, 16))
			rep := benchSelect(b, inputs, 4, n/2, core.SelFiltering)
			logT := math.Log2(float64(4*n) / 16)
			b.ReportMetric(float64(rep.Stats.Messages)/(16*logT), "msgs/(p·log)")
		})
	}
}

// BenchmarkSelectVsSortBaseline is experiment E4: the filtering/baseline
// message crossover.
func BenchmarkSelectVsSortBaseline(b *testing.B) {
	n, p, k := 16384, 16, 4
	inputs := dist.Values(dist.NewRNG(4), dist.Even(n, p))
	b.Run("filtering", func(b *testing.B) { benchSelect(b, inputs, k, n/2, core.SelFiltering) })
	b.Run("sort-baseline", func(b *testing.B) { benchSelect(b, inputs, k, n/2, core.SelSortBaseline) })
}

// BenchmarkSortChannelScaling is experiment E5: cycles scale as 1/k until
// n_max dominates.
func BenchmarkSortChannelScaling(b *testing.B) {
	n, p := 16384, 16
	for _, k := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			inputs := dist.Values(dist.NewRNG(uint64(k)), dist.Even(n, p))
			rep := benchSort(b, inputs, k, core.AlgoColumnsortGather)
			b.ReportMetric(float64(rep.Stats.Cycles)*float64(k)/float64(n), "cycles·k/n")
		})
	}
}

// BenchmarkSelectFilterPhases is experiment E6 (Fig 2): >= 1/4 purged per
// phase.
func BenchmarkSelectFilterPhases(b *testing.B) {
	n, p, k := 65536, 16, 4
	inputs := dist.Values(dist.NewRNG(6), dist.Even(n, p))
	rep := benchSelect(b, inputs, k, n/2, core.SelFiltering)
	minPurge := 1.0
	for _, f := range rep.PurgeFractions {
		if f < minPurge {
			minPurge = f
		}
	}
	if minPurge < 0.25 {
		b.Fatalf("phase purged %.3f < 1/4", minPurge)
	}
	b.ReportMetric(float64(rep.FilterPhases), "phases")
	b.ReportMetric(minPurge, "min-purge")
}

// BenchmarkSingleChannelSorts is experiment E7 (Sec 6.1): the three linear
// single-channel sorts.
func BenchmarkSingleChannelSorts(b *testing.B) {
	n, p := 2048, 8
	inputs := dist.Values(dist.NewRNG(7), dist.Even(n, p))
	for _, algo := range []core.Algorithm{core.AlgoRankSort, core.AlgoMergeSort, core.AlgoColumnsortGather} {
		b.Run(algo.String(), func(b *testing.B) {
			rep := benchSort(b, inputs, 1, algo)
			b.ReportMetric(float64(rep.Stats.MaxAux), "aux-words")
		})
	}
}

// BenchmarkSortRecursive is experiment E8 (Sec 6.2): recursive Columnsort on
// n < k^2(k-1).
func BenchmarkSortRecursive(b *testing.B) {
	p, ni, k := 64, 4, 16
	inputs := dist.Values(dist.NewRNG(8), dist.Even(p*ni, p))
	b.Run("recursive", func(b *testing.B) { benchSort(b, inputs, k, core.AlgoColumnsortRecursive) })
	b.Run("gather", func(b *testing.B) { benchSort(b, inputs, k, core.AlgoColumnsortGather) })
}

// BenchmarkTransforms is experiment E9 (Fig 1): the in-memory matrix
// transformations.
func BenchmarkTransforms(b *testing.B) {
	sh := matrix.Shape{M: 4096, K: 16}
	data := make([]int64, sh.N())
	for i := range data {
		data[i] = int64(i)
	}
	buf := make([]int64, sh.N())
	for _, tr := range []struct {
		name string
		f    matrix.Transform
	}{
		{"transpose", matrix.Transpose},
		{"un-diagonalize", matrix.UnDiagonalize},
		{"up-shift", matrix.UpShift},
		{"down-shift", matrix.DownShift},
	} {
		b.Run(tr.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.Apply(sh, data, tr.f, buf)
			}
		})
	}
}

// BenchmarkSimulationOverhead is experiment E10 (Sec 2): MCB-on-MCB
// simulation cost.
func BenchmarkSimulationOverhead(b *testing.B) {
	prog := func(v *mcb.VProc) {
		for i := 0; i < 20; i++ {
			if v.ID() == i%v.P() {
				v.Write(i%v.K(), mcb.MsgX(0, int64(i)))
			} else {
				v.Read(i % v.K())
			}
		}
	}
	for _, host := range []struct{ p, k int }{{16, 4}, {8, 2}, {4, 2}} {
		b.Run(fmt.Sprintf("host=%dx%d", host.p, host.k), func(b *testing.B) {
			var res *mcb.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = mcb.SimulateUniform(mcb.Config{P: host.p, K: host.k, StallTimeout: time.Minute}, 16, 4, prog)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.Cycles)/20, "hostcyc/vcyc")
		})
	}
}

// BenchmarkScheduleAblation is experiment E11: closed-form vs edge-coloring
// schedule construction.
func BenchmarkScheduleAblation(b *testing.B) {
	sh := matrix.Shape{M: 1024, K: 16}
	b.Run("transpose-closed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			schedule.TransposeClosed(sh)
		}
	})
	b.Run("transpose-coloring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			schedule.RouteMatching(sh, matrix.Transpose)
		}
	})
	b.Run("undiagonalize-coloring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			schedule.RouteMatching(sh, matrix.UnDiagonalize)
		}
	})
}

// BenchmarkLowerBoundGap is experiment E12 (Sec 4): measured cost over the
// adversary lower bound.
func BenchmarkLowerBoundGap(b *testing.B) {
	n, p, k := 8192, 16, 8
	card := dist.Even(n, p)
	inputs := dist.Values(dist.NewRNG(12), card)
	b.Run("sort", func(b *testing.B) {
		rep := benchSort(b, inputs, k, core.AlgoColumnsortGather)
		b.ReportMetric(float64(rep.Stats.Messages)/adversary.SortingMessagesLB(card), "msgs/LB")
	})
	b.Run("select", func(b *testing.B) {
		rep := benchSelect(b, inputs, k, n/2, core.SelFiltering)
		b.ReportMetric(float64(rep.Stats.Messages)/adversary.SelectionMessagesLB(card, n/2), "msgs/LB")
	})
}

// BenchmarkSortMemoryModes is experiment E13 (Sec 6.1): gather vs virtual
// column memory/cycle trade.
func BenchmarkSortMemoryModes(b *testing.B) {
	n, p, k := 8192, 32, 4
	inputs := dist.Values(dist.NewRNG(13), dist.Even(n, p))
	for _, algo := range []core.Algorithm{core.AlgoColumnsortGather, core.AlgoColumnsortVirtual} {
		b.Run(algo.String(), func(b *testing.B) {
			rep := benchSort(b, inputs, k, algo)
			b.ReportMetric(float64(rep.Stats.MaxAux), "aux-words")
		})
	}
}

// BenchmarkShoutEchoSelect is experiment E14 (Sec 9 / [Marb85]): selection
// in the Shout-Echo model, O(log n) rounds.
func BenchmarkShoutEchoSelect(b *testing.B) {
	for _, n := range []int{4096, 65536} {
		b.Run(fmt.Sprintf("n=%d/p=16", n), func(b *testing.B) {
			inputs := dist.Values(dist.NewRNG(uint64(n)), dist.Even(n, 16))
			var rep *shoutecho.SelectReport
			for i := 0; i < b.N; i++ {
				var err error
				_, rep, err = shoutecho.Select(inputs, n/2, shoutecho.Config{StallTimeout: time.Minute})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Stats.Rounds), "rounds")
			b.ReportMetric(float64(rep.Stats.Rounds)/math.Log2(float64(n)), "rounds/log2(n)")
		})
	}
}

// BenchmarkColumnsortOnCREW is experiment E15 (Sec 9): the MCB Columnsort on
// CREW shared memory with k cells.
func BenchmarkColumnsortOnCREW(b *testing.B) {
	const n, p, k = 2048, 16, 8
	inputs := dist.Values(dist.NewRNG(15), dist.Even(n, p))
	var res *crew.Result
	for i := 0; i < b.N; i++ {
		outputs := make([][]int64, p)
		var err error
		res, err = crew.RunUniform(crew.Config{P: p, Cells: k, StallTimeout: time.Minute},
			func(pr *crew.Proc) {
				node := crew.NewMCBNode(pr, k)
				outputs[node.ID()] = core.SortNode(node, inputs[node.ID()], core.AlgoColumnsortGather)
			})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.Steps), "steps")
	b.ReportMetric(float64(res.Stats.CellsTouched), "cells")
}

// BenchmarkExtremaAcrossModels is experiment E16: max-finding on IPBAM
// (collision bits), MCB (Partial-Sums) and Shout-Echo.
func BenchmarkExtremaAcrossModels(b *testing.B) {
	const p = 64
	inputs := dist.Values(dist.NewRNG(16), dist.NearlyEven(4*p, p))
	b.Run("ipbam", func(b *testing.B) {
		var res *ipbam.Result
		for i := 0; i < b.N; i++ {
			var err error
			_, res, err = ipbam.FindMax(inputs, ipbam.Config{StallTimeout: time.Minute})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Stats.Slots), "slots")
	})
	b.Run("mcb", func(b *testing.B) {
		var res *mcb.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = mcb.RunUniform(mcb.Config{P: p, K: 4, StallTimeout: time.Minute}, func(pr mcb.Node) {
				core.MaxNode(pr, inputs[pr.ID()])
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Stats.Cycles), "cycles")
	})
	b.Run("shoutecho", func(b *testing.B) {
		var res *shoutecho.Result
		for i := 0; i < b.N; i++ {
			var err error
			_, res, err = shoutecho.Max(inputs, shoutecho.Config{StallTimeout: time.Minute})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Stats.Rounds), "rounds")
	})
}
